//! Dense two-phase primal simplex.
//!
//! Solves `max/min c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0` on a dense
//! tableau with Bland's anti-cycling rule. Intended for the small,
//! dense LP relaxations produced by CGRA-mapping ILP encodings (a few
//! hundred variables); no sparse machinery, no scaling heuristics.
//!
//! ## Warm starts
//!
//! [`Lp::solve_with_basis`] accepts the [`Basis`] of a previous,
//! related solve and crash-pivots the fresh tableau to it before
//! entering the simplex loop. The basis is stored *logically*
//! ([`BasisVar`]: structural / per-row slack / per-row artificial), so
//! it survives the column-layout changes that happen when a sibling
//! branch-and-bound node turns a `≤` fixing row into an `=` one, and it
//! tolerates rows appended after it was recorded (the CEGAR re-solve
//! pattern). Only basics with nonzero recorded value are re-seated —
//! degenerate rows keep their seed basis at the same vertex for free.
//! If the crashed basis is primal-infeasible the solver falls back to
//! the cold two-phase path, so a stale basis can cost time but never
//! correctness.

/// Constraint comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Eq,
    Ge,
}

/// A linear program.
#[derive(Debug, Clone)]
pub struct Lp {
    num_vars: usize,
    /// (coefficients over `0..num_vars`, cmp, rhs)
    constraints: Vec<(Vec<f64>, Cmp, f64)>,
    objective: Vec<f64>,
    maximize: bool,
    interrupt: crate::interrupt::Interrupt,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    Optimal {
        x: Vec<f64>,
        objective: f64,
    },
    Infeasible,
    Unbounded,
    /// The attached [`Interrupt`](crate::interrupt::Interrupt) fired
    /// mid-pivot; the tableau was abandoned, no result is available.
    Interrupted,
}

/// Why [`Lp::iterate`] stopped before reaching optimality.
enum IterStop {
    Unbounded,
    Interrupted,
}

/// Logical identity of one basic variable, independent of the tableau
/// column layout of any particular solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisVar {
    /// Original problem variable `x_i`.
    Structural(usize),
    /// Slack/surplus of constraint row `i`.
    Slack(usize),
    /// Artificial of constraint row `i` (degenerate leftovers only).
    Artificial(usize),
}

/// A simplex basis: which logical variable is basic in each row, the
/// value each basic variable took at the recorded vertex, plus the
/// pivot count of the solve that produced it (used by callers to
/// estimate warm-start savings).
///
/// The values matter for warm starts: assignment-shaped LPs are heavily
/// degenerate, so most basic structurals sit at zero — re-seating them
/// buys nothing (the vertex is unchanged) but costs a dense pivot each.
/// The crash therefore only replays basics with nonzero value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Basis {
    pub rows: Vec<BasisVar>,
    pub values: Vec<f64>,
    pub pivots: u64,
}

/// Working tableau plus the row↔column bookkeeping needed to translate
/// a logical [`Basis`] into concrete columns.
struct Tableau {
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
    total: usize,
    n: usize,
    num_slack: usize,
    /// Per row: its slack/surplus column, if any.
    slack_col: Vec<Option<usize>>,
    /// Per row: its artificial column, if any.
    art_col: Vec<Option<usize>>,
    /// Owning row of each slack column (index = col - n).
    slack_owner: Vec<usize>,
    /// Owning row of each artificial column (index = col - n - num_slack).
    art_owner: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn is_artificial(&self, col: usize) -> bool {
        col >= self.n + self.num_slack
    }

    fn classify(&self, col: usize) -> BasisVar {
        if col < self.n {
            BasisVar::Structural(col)
        } else if col < self.n + self.num_slack {
            BasisVar::Slack(self.slack_owner[col - self.n])
        } else {
            BasisVar::Artificial(self.art_owner[col - self.n - self.num_slack])
        }
    }
}

const EPS: f64 = 1e-9;

/// Magnitudes below this are snapped to an exact `0.0` during pivots,
/// keeping the tableau sparse (and denormal-free) so the per-pivot
/// row-skip guard keeps paying off. Kept well under [`EPS`] so nothing
/// a feasibility or optimality test could see is ever altered.
const DROP_TOL: f64 = 1e-11;

impl Lp {
    /// An LP over `num_vars` non-negative variables.
    pub fn new(num_vars: usize, maximize: bool) -> Self {
        Lp {
            num_vars,
            constraints: Vec::new(),
            objective: vec![0.0; num_vars],
            maximize,
            interrupt: crate::interrupt::Interrupt::none(),
        }
    }

    /// Attach a stop signal polled once per pivot — one simplex solve
    /// on a few hundred columns can take long enough that a caller's
    /// cancellation must be able to land mid-solve, not just between
    /// solves.
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.interrupt = interrupt;
    }

    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Set the objective coefficient of variable `v`.
    pub fn set_objective(&mut self, v: usize, c: f64) {
        self.objective[v] = c;
    }

    /// Add `sum coeffs[i]·x_i  cmp  rhs`. `coeffs` is a sparse list of
    /// `(var, coeff)` pairs.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        let mut row = vec![0.0; self.num_vars];
        for &(v, c) in coeffs {
            assert!(v < self.num_vars, "variable out of range");
            row[v] += c;
        }
        self.constraints.push((row, cmp, rhs));
    }

    /// Build the initial tableau: normalise to `b ≥ 0`, lay columns out
    /// as `[orig 0..n | slack/surplus | artificial] + rhs`, and seat the
    /// canonical starting basis (slack for `≤`, artificial for `≥`/`=`).
    fn build_tableau(&self) -> Tableau {
        let m = self.constraints.len();
        let n = self.num_vars;

        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = self.constraints.clone();
        for (row, cmp, rhs) in &mut rows {
            if *rhs < 0.0 {
                for c in row.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let num_slack = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Le | Cmp::Ge))
            .count();
        let num_art = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Eq | Cmp::Ge))
            .count();
        let total = n + num_slack + num_art;
        let mut t = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut s_off = n;
        let mut a_off = n + num_slack;
        let mut slack_col = vec![None; m];
        let mut art_col = vec![None; m];
        let mut slack_owner = Vec::with_capacity(num_slack);
        let mut art_owner = Vec::with_capacity(num_art);

        for (i, (row, cmp, rhs)) in rows.iter().enumerate() {
            t[i][..n].copy_from_slice(row);
            t[i][total] = *rhs;
            match cmp {
                Cmp::Le => {
                    t[i][s_off] = 1.0;
                    basis[i] = s_off;
                    slack_col[i] = Some(s_off);
                    slack_owner.push(i);
                    s_off += 1;
                }
                Cmp::Ge => {
                    t[i][s_off] = -1.0;
                    slack_col[i] = Some(s_off);
                    slack_owner.push(i);
                    s_off += 1;
                    t[i][a_off] = 1.0;
                    basis[i] = a_off;
                    art_col[i] = Some(a_off);
                    art_owner.push(i);
                    a_off += 1;
                }
                Cmp::Eq => {
                    t[i][a_off] = 1.0;
                    basis[i] = a_off;
                    art_col[i] = Some(a_off);
                    art_owner.push(i);
                    a_off += 1;
                }
            }
        }

        Tableau {
            t,
            basis,
            total,
            n,
            num_slack,
            slack_col,
            art_col,
            slack_owner,
            art_owner,
        }
    }

    /// Solve with two-phase primal simplex (cold start).
    pub fn solve(&self) -> LpResult {
        self.solve_with_basis(None).0
    }

    /// Solve warm-started from the basis of a previous, related solve.
    pub fn solve_from(&self, basis: &Basis) -> LpResult {
        self.solve_with_basis(Some(basis)).0
    }

    /// Solve, optionally warm-started, and return the optimal basis so
    /// the caller can chain it into the next related solve. The basis
    /// is `None` unless the result is `Optimal`; its `pivots` field
    /// counts the pivots this solve performed (crash pivots included).
    pub fn solve_with_basis(&self, warm: Option<&Basis>) -> (LpResult, Option<Basis>) {
        if let Some(w) = warm {
            if let Some(out) = self.try_warm(w) {
                return out;
            }
        }
        let tab = self.build_tableau();
        let mut pivots = 0u64;
        match self.phase1(tab, &mut pivots) {
            Ok(tab) => self.phase2(tab, pivots),
            Err(r) => (r, None),
        }
    }

    /// Crash the fresh tableau to `w` and continue from there. Returns
    /// `None` when the warm basis cannot be replayed soundly (shape
    /// mismatch or primal infeasibility), signalling a cold fallback.
    fn try_warm(&self, w: &Basis) -> Option<(LpResult, Option<Basis>)> {
        let mut tab = self.build_tableau();
        let m = tab.t.len();
        // Rows may have been *appended* since the basis was recorded
        // (the CEGAR pattern: model + one blocking row). The new rows
        // simply keep their seeded slack/artificial basis; fewer rows
        // than recorded means a different problem.
        if w.rows.len() > m || w.values.len() != w.rows.len() {
            return None;
        }
        let mut pivots = 0u64;
        // Crash pivots maintain the identity structure of the basis but
        // ignore the ratio test, so the intermediate rhs may go
        // negative; that is checked below, not assumed.
        let mut scratch_z = vec![0.0; tab.total + 1];
        for i in 0..w.rows.len() {
            if w.values[i].abs() <= EPS {
                // Degenerate basic: at value zero the recorded vertex is
                // unchanged whether this variable or the row's seeded
                // slack/artificial is basic — skip the dense pivot.
                continue;
            }
            let target = match w.rows[i] {
                BasisVar::Structural(j) if j < tab.n => j,
                BasisVar::Structural(_) => return None, // different problem
                BasisVar::Slack(r) => match tab.slack_col.get(r).copied().flatten() {
                    Some(c) => c,
                    // The row lost its slack (e.g. a ≤ fixing row became
                    // =): keep the seeded artificial basis for this row.
                    None => continue,
                },
                // Degenerate leftovers; the seeded basis already has the
                // artificial where one exists.
                BasisVar::Artificial(_) => continue,
            };
            if tab.basis[i] == target || tab.basis.contains(&target) {
                continue;
            }
            if tab.t[i][target].abs() <= 1e-7 {
                continue; // numerically unusable pivot: keep seed basis
            }
            Self::pivot(
                &mut tab.t,
                &mut scratch_z,
                &mut tab.basis,
                i,
                target,
                tab.total,
            );
            pivots += 1;
        }
        // Restore primal feasibility where the crash left a basic
        // variable negative. This is the common case for a
        // branch-and-bound child: the parent vertex violates exactly
        // the new fixing row (`x_v = 0` with `x_v` fractional), so a
        // couple of dual-style row pivots — entering column chosen with
        // a negative coefficient, which makes the row's rhs positive —
        // repair it far cheaper than a cold two-phase solve. Artificial
        // columns are excluded so they cannot re-enter. If the loop
        // stalls, fall back cold; the crash never decides feasibility.
        let mut guard = 0u32;
        loop {
            let worst = (0..m)
                .filter(|&i| tab.t[i][tab.total] < -EPS)
                .min_by(|&a, &b| {
                    tab.t[a][tab.total]
                        .partial_cmp(&tab.t[b][tab.total])
                        .unwrap()
                });
            let Some(r) = worst else { break };
            guard += 1;
            if guard > 200 {
                return None;
            }
            let j = (0..tab.n + tab.num_slack).find(|&j| tab.t[r][j] < -EPS)?;
            Self::pivot(&mut tab.t, &mut scratch_z, &mut tab.basis, r, j, tab.total);
            pivots += 1;
        }
        let needs_phase1 =
            (0..m).any(|i| tab.is_artificial(tab.basis[i]) && tab.t[i][tab.total] > EPS);
        if needs_phase1 {
            match self.phase1(tab, &mut pivots) {
                Ok(t2) => return Some(self.phase2(t2, pivots)),
                Err(LpResult::Infeasible) => return Some((LpResult::Infeasible, None)),
                Err(r) => return Some((r, None)),
            }
        }
        Some(self.phase2(tab, pivots))
    }

    /// Phase 1: minimise the sum of artificials from the tableau's
    /// current basis; errors are terminal solve outcomes.
    fn phase1(&self, mut tab: Tableau, pivots: &mut u64) -> Result<Tableau, LpResult> {
        let m = tab.t.len();
        let total = tab.total;
        let has_art = tab.art_col.iter().any(|c| c.is_some());
        if !has_art {
            return Ok(tab);
        }
        // Cost +1 per artificial, priced out over rows whose basic
        // variable is an artificial (those are exactly the rows where
        // the phase-1 objective is nonzero on the basis).
        let mut z = vec![0.0; total + 1];
        for c in tab.art_col.iter().flatten() {
            z[*c] = 1.0;
        }
        for i in 0..m {
            if tab.is_artificial(tab.basis[i]) {
                for (zj, tij) in z.iter_mut().zip(&tab.t[i]).take(total + 1) {
                    *zj -= tij;
                }
            }
        }
        match self.iterate(&mut tab.t, &mut z, &mut tab.basis, total, pivots) {
            Ok(()) => {}
            // Unbounded phase 1 cannot happen with bounded objective.
            Err(IterStop::Unbounded) => return Err(LpResult::Infeasible),
            Err(IterStop::Interrupted) => return Err(LpResult::Interrupted),
        }
        if z[total] < -EPS {
            return Err(LpResult::Infeasible);
        }
        // Drive any artificial still in the basis out (degenerate).
        for i in 0..m {
            if tab.is_artificial(tab.basis[i]) {
                // Find a non-artificial column with nonzero pivot.
                if let Some(j) = (0..tab.n + tab.num_slack).find(|&j| tab.t[i][j].abs() > EPS) {
                    Self::pivot(&mut tab.t, &mut z, &mut tab.basis, i, j, total);
                    *pivots += 1;
                }
                // Otherwise the row is redundant (all zero): leave it.
            }
        }
        Ok(tab)
    }

    /// Phase 2: optimise the original objective from a primal-feasible
    /// basis, then extract the solution and its logical basis.
    fn phase2(&self, mut tab: Tableau, mut pivots: u64) -> (LpResult, Option<Basis>) {
        let m = tab.t.len();
        let total = tab.total;
        let n = tab.n;
        let sign = if self.maximize { 1.0 } else { -1.0 };
        let mut z = vec![0.0; total + 1];
        for (j, &c) in self.objective.iter().enumerate() {
            z[j] = -sign * c;
        }
        // Forbid artificials from re-entering by pricing them +inf-ish:
        // simply zero their columns out of consideration by setting a
        // large positive reduced cost.
        for c in tab.art_col.iter().flatten() {
            z[*c] = 1e18;
        }
        // Price out the current basis.
        for i in 0..m {
            let b = tab.basis[i];
            if z[b].abs() > EPS && z[b] < 1e17 {
                let factor = z[b];
                for (zj, tij) in z.iter_mut().zip(&tab.t[i]).take(total + 1) {
                    *zj -= factor * tij;
                }
            }
        }
        match self.iterate(&mut tab.t, &mut z, &mut tab.basis, total, &mut pivots) {
            Ok(()) => {}
            Err(IterStop::Unbounded) => return (LpResult::Unbounded, None),
            Err(IterStop::Interrupted) => return (LpResult::Interrupted, None),
        }

        let mut x = vec![0.0; n];
        for i in 0..m {
            if tab.basis[i] < n {
                x[tab.basis[i]] = tab.t[i][total];
            }
        }
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, xv)| c * xv).sum();
        let basis = Basis {
            rows: tab.basis.iter().map(|&b| tab.classify(b)).collect(),
            values: (0..m).map(|i| tab.t[i][total]).collect(),
            pivots,
        };
        (LpResult::Optimal { x, objective }, Some(basis))
    }

    /// Run simplex iterations until optimal (`Ok`), unbounded, or the
    /// attached interrupt fires (`Err`).
    fn iterate(
        &self,
        t: &mut [Vec<f64>],
        z: &mut [f64],
        basis: &mut [usize],
        total: usize,
        pivots: &mut u64,
    ) -> Result<(), IterStop> {
        let m = t.len();
        // Dantzig pricing (most negative reduced cost) until a run of
        // degenerate pivots suggests cycling; then Bland's rule until a
        // nondegenerate pivot breaks the stall. Bland alone is safe but
        // crawls on the heavily degenerate assignment-shaped LPs the
        // mappers produce — worst on warm starts, whose crashed bases
        // begin at a degenerate vertex.
        const STALL_LIMIT: u32 = 24;
        let mut stalled = 0u32;
        // Generous iteration cap; the stall switch to Bland's rule
        // makes unbounded cycling practically impossible.
        for _ in 0..100_000 {
            if self.interrupt.should_stop() {
                return Err(IterStop::Interrupted);
            }
            let enter = if stalled < STALL_LIMIT {
                let mut best_j = None;
                let mut best_v = -EPS;
                for (j, &zj) in z.iter().enumerate().take(total) {
                    if zj < best_v {
                        best_v = zj;
                        best_j = Some(j);
                    }
                }
                best_j
            } else {
                (0..total).find(|&j| z[j] < -EPS)
            };
            let Some(enter) = enter else {
                return Ok(());
            };
            // Leaving row: min ratio, ties by smallest basis index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..m {
                if t[i][enter] > EPS {
                    let ratio = t[i][total] / t[i][enter];
                    if ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(IterStop::Unbounded);
            };
            if best <= EPS {
                stalled += 1;
            } else {
                stalled = 0;
            }
            Self::pivot(t, z, basis, leave, enter, total);
            *pivots += 1;
        }
        // Numerical trouble: treat as optimal-at-current-point.
        Ok(())
    }

    #[allow(clippy::needless_range_loop)] // indexes two tableau rows at once
    fn pivot(
        t: &mut [Vec<f64>],
        z: &mut [f64],
        basis: &mut [usize],
        row: usize,
        col: usize,
        total: usize,
    ) {
        let p = t[row][col];
        debug_assert!(p.abs() > EPS);
        for j in 0..=total {
            t[row][j] /= p;
            if t[row][j].abs() < DROP_TOL {
                t[row][j] = 0.0;
            }
        }
        for i in 0..t.len() {
            if i != row && t[i][col].abs() > EPS {
                let f = t[i][col];
                for j in 0..=total {
                    t[i][j] -= f * t[row][j];
                    // Snap round-off back to an exact zero: the
                    // `t[i][col] > EPS` guard above short-circuits whole
                    // rows only while the tableau stays genuinely
                    // sparse, and crash pivots (no ratio test) would
                    // otherwise fill it with near-zero junk whose
                    // updates — many on denormals — dominate the solve.
                    if t[i][j].abs() < DROP_TOL {
                        t[i][j] = 0.0;
                    }
                }
            }
        }
        if z[col].abs() > EPS {
            let f = z[col];
            for j in 0..=total {
                z[j] -= f * t[row][j];
            }
        }
        basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  -> x=4, y=0, obj 12.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, 3.0)], Cmp::Le, 6.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(objective, 12.0);
                assert_near(x[0], 4.0);
                assert_near(x[1], 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn minimisation_with_ge() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8.
        let mut lp = Lp::new(2, false);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(&[(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(objective, 2.8);
                assert_near(x[0], 1.6);
                assert_near(x[1], 1.2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x <= 2 -> obj 3.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 3.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
        match lp.solve() {
            LpResult::Optimal { objective, .. } => assert_near(objective, 3.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraints.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, 1.0);
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // max -x s.t. -x <= -2 (i.e. x >= 2) -> x = 2, obj -2.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, -1.0)], Cmp::Le, -2.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(x[0], 2.0);
                assert_near(objective, -2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate vertex: multiple constraints through origin.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 0.0);
        match lp.solve() {
            LpResult::Optimal { objective, .. } => assert_near(objective, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_start_reaches_same_objective() {
        // Re-solving an LP (with a phase-1 component) from its own
        // optimal basis must agree with the cold solve, and skipping
        // phase 1 must show up as strictly fewer pivots.
        let mut lp = Lp::new(2, false);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(&[(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
        let (cold, basis) = lp.solve_with_basis(None);
        let basis = basis.expect("optimal solve returns a basis");
        assert!(basis.pivots > 0);
        let (warm, warm_basis) = lp.solve_with_basis(Some(&basis));
        match (&cold, &warm) {
            (LpResult::Optimal { objective: a, .. }, LpResult::Optimal { objective: b, .. }) => {
                assert_near(*a, *b)
            }
            other => panic!("{other:?}"),
        }
        let wp = warm_basis.expect("warm solve returns a basis").pivots;
        assert!(
            wp <= basis.pivots,
            "warm restart should not pivot more ({wp} vs {})",
            basis.pivots
        );
    }

    #[test]
    fn warm_start_survives_added_fixing_row() {
        // Branch-and-bound shape: parent LP, then a child with one
        // fixing row flipped from ≤ to =. The parent basis warm-starts
        // the child and must reach the child's own cold optimum.
        let build = |fix_x0: bool| {
            let mut lp = Lp::new(2, true);
            lp.set_objective(0, 3.0);
            lp.set_objective(1, 2.0);
            lp.add_constraint(&[(0, 2.0), (1, 1.0)], Cmp::Le, 4.0);
            lp.add_constraint(&[(0, 1.0), (1, 3.0)], Cmp::Le, 6.0);
            if fix_x0 {
                lp.add_constraint(&[(0, 1.0)], Cmp::Eq, 1.0);
            } else {
                lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
            }
            lp
        };
        let (_, parent_basis) = build(false).solve_with_basis(None);
        let parent_basis = parent_basis.expect("parent optimal");
        let child = build(true);
        let cold = child.solve();
        let warm = child.solve_from(&parent_basis);
        match (&cold, &warm) {
            (LpResult::Optimal { objective: a, .. }, LpResult::Optimal { objective: b, .. }) => {
                assert_near(*a, *b)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_start_from_mismatched_basis_falls_back() {
        // A basis from an unrelated, larger problem must not poison the
        // solve: shape mismatch falls back to the cold path.
        let mut big = Lp::new(5, true);
        for v in 0..5 {
            big.set_objective(v, 1.0);
            big.add_constraint(&[(v, 1.0)], Cmp::Le, 1.0);
        }
        let (_, bogus) = big.solve_with_basis(None);
        let bogus = bogus.unwrap();

        let mut lp = Lp::new(1, true);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
        match lp.solve_from(&bogus) {
            LpResult::Optimal { objective, .. } => assert_near(objective, 2.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_start_detects_infeasible_child() {
        // Parent feasible; child adds an inconsistent fixing row. Warm
        // start must report Infeasible, same as cold.
        let mut parent = Lp::new(1, true);
        parent.set_objective(0, 1.0);
        parent.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        let (_, basis) = parent.solve_with_basis(None);
        let basis = basis.unwrap();

        let mut child = Lp::new(1, true);
        child.set_objective(0, 1.0);
        child.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        child.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(child.solve(), LpResult::Infeasible);
        assert_eq!(child.solve_from(&basis), LpResult::Infeasible);
    }

    #[test]
    fn relaxation_of_binary_assignment() {
        // Assignment relaxation: two items, two bins, each item in
        // exactly one bin, each bin at most one item; max total profit.
        // Profits: p(0,0)=5 p(0,1)=1 p(1,0)=2 p(1,1)=4 -> 9 (integral).
        let var = |i: usize, b: usize| i * 2 + b;
        let mut lp = Lp::new(4, true);
        for (v, p) in [
            (var(0, 0), 5.0),
            (var(0, 1), 1.0),
            (var(1, 0), 2.0),
            (var(1, 1), 4.0),
        ] {
            lp.set_objective(v, p);
        }
        for i in 0..2 {
            lp.add_constraint(&[(var(i, 0), 1.0), (var(i, 1), 1.0)], Cmp::Eq, 1.0);
        }
        for b in 0..2 {
            lp.add_constraint(&[(var(0, b), 1.0), (var(1, b), 1.0)], Cmp::Le, 1.0);
        }
        match lp.solve() {
            LpResult::Optimal { objective, x } => {
                assert_near(objective, 9.0);
                assert_near(x[var(0, 0)], 1.0);
                assert_near(x[var(1, 1)], 1.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
