//! Dense two-phase primal simplex.
//!
//! Solves `max/min c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0` on a dense
//! tableau with Bland's anti-cycling rule. Intended for the small,
//! dense LP relaxations produced by CGRA-mapping ILP encodings (a few
//! hundred variables); no sparse machinery, no scaling heuristics.

/// Constraint comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Le,
    Eq,
    Ge,
}

/// A linear program.
#[derive(Debug, Clone)]
pub struct Lp {
    num_vars: usize,
    /// (coefficients over `0..num_vars`, cmp, rhs)
    constraints: Vec<(Vec<f64>, Cmp, f64)>,
    objective: Vec<f64>,
    maximize: bool,
    interrupt: crate::interrupt::Interrupt,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    Optimal {
        x: Vec<f64>,
        objective: f64,
    },
    Infeasible,
    Unbounded,
    /// The attached [`Interrupt`](crate::interrupt::Interrupt) fired
    /// mid-pivot; the tableau was abandoned, no result is available.
    Interrupted,
}

/// Why [`Lp::iterate`] stopped before reaching optimality.
enum IterStop {
    Unbounded,
    Interrupted,
}

const EPS: f64 = 1e-9;

impl Lp {
    /// An LP over `num_vars` non-negative variables.
    pub fn new(num_vars: usize, maximize: bool) -> Self {
        Lp {
            num_vars,
            constraints: Vec::new(),
            objective: vec![0.0; num_vars],
            maximize,
            interrupt: crate::interrupt::Interrupt::none(),
        }
    }

    /// Attach a stop signal polled once per pivot — one simplex solve
    /// on a few hundred columns can take long enough that a caller's
    /// cancellation must be able to land mid-solve, not just between
    /// solves.
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.interrupt = interrupt;
    }

    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Set the objective coefficient of variable `v`.
    pub fn set_objective(&mut self, v: usize, c: f64) {
        self.objective[v] = c;
    }

    /// Add `sum coeffs[i]·x_i  cmp  rhs`. `coeffs` is a sparse list of
    /// `(var, coeff)` pairs.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        let mut row = vec![0.0; self.num_vars];
        for &(v, c) in coeffs {
            assert!(v < self.num_vars, "variable out of range");
            row[v] += c;
        }
        self.constraints.push((row, cmp, rhs));
    }

    /// Solve with two-phase primal simplex.
    pub fn solve(&self) -> LpResult {
        let m = self.constraints.len();
        let n = self.num_vars;

        // Normalise to b >= 0.
        let mut rows: Vec<(Vec<f64>, Cmp, f64)> = self.constraints.clone();
        for (row, cmp, rhs) in &mut rows {
            if *rhs < 0.0 {
                for c in row.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *cmp = match *cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        // Column layout: [orig 0..n | slack/surplus | artificial] + rhs.
        let num_slack = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Le | Cmp::Ge))
            .count();
        let num_art = rows
            .iter()
            .filter(|(_, c, _)| matches!(c, Cmp::Eq | Cmp::Ge))
            .count();
        let total = n + num_slack + num_art;
        let mut t = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut s_off = n;
        let mut a_off = n + num_slack;
        let mut artificials = Vec::new();

        for (i, (row, cmp, rhs)) in rows.iter().enumerate() {
            t[i][..n].copy_from_slice(row);
            t[i][total] = *rhs;
            match cmp {
                Cmp::Le => {
                    t[i][s_off] = 1.0;
                    basis[i] = s_off;
                    s_off += 1;
                }
                Cmp::Ge => {
                    t[i][s_off] = -1.0;
                    s_off += 1;
                    t[i][a_off] = 1.0;
                    basis[i] = a_off;
                    artificials.push(a_off);
                    a_off += 1;
                }
                Cmp::Eq => {
                    t[i][a_off] = 1.0;
                    basis[i] = a_off;
                    artificials.push(a_off);
                    a_off += 1;
                }
            }
        }

        // Phase 1: minimise sum of artificials, i.e. maximise their
        // negation: cost -1 per artificial, so the reduced-cost row
        // starts with +1 on artificial columns and is then priced out
        // over the artificial basis rows.
        if !artificials.is_empty() {
            let mut z = vec![0.0; total + 1];
            for &a in &artificials {
                z[a] = 1.0;
            }
            for i in 0..m {
                if artificials.contains(&basis[i]) {
                    for j in 0..=total {
                        z[j] -= t[i][j];
                    }
                }
            }
            match self.iterate(&mut t, &mut z, &mut basis, total) {
                Ok(()) => {}
                // Unbounded phase 1 cannot happen with bounded objective.
                Err(IterStop::Unbounded) => return LpResult::Infeasible,
                Err(IterStop::Interrupted) => return LpResult::Interrupted,
            }
            if z[total] < -EPS {
                return LpResult::Infeasible;
            }
            // Drive any artificial still in the basis out (degenerate).
            for i in 0..m {
                if artificials.contains(&basis[i]) {
                    // Find a non-artificial column with nonzero pivot.
                    if let Some(j) = (0..n + num_slack).find(|&j| t[i][j].abs() > EPS) {
                        Self::pivot(&mut t, &mut z, &mut basis, i, j, total);
                    }
                    // Otherwise the row is redundant (all zero): leave it.
                }
            }
        }

        // Phase 2: original objective (as maximisation).
        let sign = if self.maximize { 1.0 } else { -1.0 };
        let mut z = vec![0.0; total + 1];
        for (j, &c) in self.objective.iter().enumerate() {
            z[j] = -sign * c;
        }
        // Forbid artificials from re-entering by pricing them +inf-ish:
        // simply zero their columns out of consideration by setting a
        // large positive reduced cost.
        for &a in &artificials {
            z[a] = 1e18;
        }
        // Price out the current basis.
        for i in 0..m {
            let b = basis[i];
            if z[b].abs() > EPS && z[b] < 1e17 {
                let factor = z[b];
                for j in 0..=total {
                    z[j] -= factor * t[i][j];
                }
            }
        }
        match self.iterate(&mut t, &mut z, &mut basis, total) {
            Ok(()) => {}
            Err(IterStop::Unbounded) => return LpResult::Unbounded,
            Err(IterStop::Interrupted) => return LpResult::Interrupted,
        }

        let mut x = vec![0.0; n];
        for i in 0..m {
            if basis[i] < n {
                x[basis[i]] = t[i][total];
            }
        }
        let objective: f64 = self.objective.iter().zip(&x).map(|(c, xv)| c * xv).sum();
        LpResult::Optimal { x, objective }
    }

    /// Run simplex iterations until optimal (`Ok`), unbounded, or the
    /// attached interrupt fires (`Err`).
    fn iterate(
        &self,
        t: &mut [Vec<f64>],
        z: &mut [f64],
        basis: &mut [usize],
        total: usize,
    ) -> Result<(), IterStop> {
        let m = t.len();
        // Generous iteration cap; Bland's rule guarantees termination.
        for _ in 0..100_000 {
            if self.interrupt.should_stop() {
                return Err(IterStop::Interrupted);
            }
            // Entering column: Bland — smallest index with negative
            // reduced cost.
            let enter = (0..total).find(|&j| z[j] < -EPS);
            let Some(enter) = enter else {
                return Ok(());
            };
            // Leaving row: min ratio, ties by smallest basis index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..m {
                if t[i][enter] > EPS {
                    let ratio = t[i][total] / t[i][enter];
                    if ratio < best - EPS
                        || (ratio < best + EPS
                            && leave.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(IterStop::Unbounded);
            };
            Self::pivot(t, z, basis, leave, enter, total);
        }
        // Numerical trouble: treat as optimal-at-current-point.
        Ok(())
    }

    #[allow(clippy::needless_range_loop)] // indexes two tableau rows at once
    fn pivot(
        t: &mut [Vec<f64>],
        z: &mut [f64],
        basis: &mut [usize],
        row: usize,
        col: usize,
        total: usize,
    ) {
        let p = t[row][col];
        debug_assert!(p.abs() > EPS);
        for j in 0..=total {
            t[row][j] /= p;
        }
        for i in 0..t.len() {
            if i != row && t[i][col].abs() > EPS {
                let f = t[i][col];
                for j in 0..=total {
                    t[i][j] -= f * t[row][j];
                }
            }
        }
        if z[col].abs() > EPS {
            let f = z[col];
            for j in 0..=total {
                z[j] -= f * t[row][j];
            }
        }
        basis[row] = col;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_maximisation() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  -> x=4, y=0, obj 12.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 3.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(0, 1.0), (1, 3.0)], Cmp::Le, 6.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(objective, 12.0);
                assert_near(x[0], 4.0);
                assert_near(x[1], 0.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn minimisation_with_ge() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8.
        let mut lp = Lp::new(2, false);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(&[(0, 3.0), (1, 1.0)], Cmp::Ge, 6.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(objective, 2.8);
                assert_near(x[0], 1.6);
                assert_near(x[1], 1.2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x <= 2 -> obj 3.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 3.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
        match lp.solve() {
            LpResult::Optimal { objective, .. } => assert_near(objective, 3.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraints.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, 1.0);
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // max -x s.t. -x <= -2 (i.e. x >= 2) -> x = 2, obj -2.
        let mut lp = Lp::new(1, true);
        lp.set_objective(0, -1.0);
        lp.add_constraint(&[(0, -1.0)], Cmp::Le, -2.0);
        match lp.solve() {
            LpResult::Optimal { x, objective } => {
                assert_near(x[0], 2.0);
                assert_near(objective, -2.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate vertex: multiple constraints through origin.
        let mut lp = Lp::new(2, true);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Le, 0.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 0.0);
        match lp.solve() {
            LpResult::Optimal { objective, .. } => assert_near(objective, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relaxation_of_binary_assignment() {
        // Assignment relaxation: two items, two bins, each item in
        // exactly one bin, each bin at most one item; max total profit.
        // Profits: p(0,0)=5 p(0,1)=1 p(1,0)=2 p(1,1)=4 -> 9 (integral).
        let var = |i: usize, b: usize| i * 2 + b;
        let mut lp = Lp::new(4, true);
        for (v, p) in [
            (var(0, 0), 5.0),
            (var(0, 1), 1.0),
            (var(1, 0), 2.0),
            (var(1, 1), 4.0),
        ] {
            lp.set_objective(v, p);
        }
        for i in 0..2 {
            lp.add_constraint(&[(var(i, 0), 1.0), (var(i, 1), 1.0)], Cmp::Eq, 1.0);
        }
        for b in 0..2 {
            lp.add_constraint(&[(var(0, b), 1.0), (var(1, b), 1.0)], Cmp::Le, 1.0);
        }
        match lp.solve() {
            LpResult::Optimal { objective, x } => {
                assert_near(objective, 9.0);
                assert_near(x[var(0, 0)], 1.0);
                assert_near(x[var(1, 1)], 1.0);
            }
            other => panic!("{other:?}"),
        }
    }
}
