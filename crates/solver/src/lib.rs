//! # cgra-solver
//!
//! From-scratch exact-method engines backing the "exact methods" column
//! of the survey's Table I. The CGRA-mapping literature delegates these
//! to CPLEX/Gurobi (ILP), MiniSat (SAT), Z3 (SMT) or JaCoP (CP); the
//! Rust EDA ecosystem has no canonical equivalents, so this crate
//! implements each oracle directly:
//!
//! * [`lp`] — dense two-phase primal simplex for linear programs,
//! * [`ilp`] — 0/1 integer linear programming by branch-and-bound over
//!   LP relaxations,
//! * [`sat`] — a CDCL SAT solver (two-watched literals, VSIDS, 1-UIP
//!   learning, Luby restarts),
//! * [`cnf`] — CNF construction helpers (at-most-one / exactly-one
//!   encodings),
//! * [`smt`] — lazy SMT over integer difference logic (CDCL(T) with a
//!   Bellman-Ford theory checker),
//! * [`cp`] — a finite-domain constraint-programming engine (AC-3,
//!   all-different, MRV/degree branching).
//!
//! Every engine accepts an [`Interrupt`] (deadline + shared cancel
//! flag, stride-amortised polling) so callers can abort a search
//! mid-flight; see [`interrupt`].
//!
//! The engines are general-purpose: nothing in this crate knows about
//! CGRAs. `cgra-mapper-core` builds the mapping encodings on top.

pub mod cnf;
pub mod cp;
pub mod ilp;
pub mod interrupt;
pub mod lp;
pub mod sat;
pub mod smt;
pub mod stats;

pub use cp::{CpModel, CpSolution, CpVar};
pub use ilp::{IlpConfig, IlpModel, IlpResult, IlpVar, IlpWarmStart, IncumbentHook};
pub use interrupt::Interrupt;
pub use lp::{Basis, BasisVar, Cmp, Lp, LpResult};
pub use sat::{Lit, SatResult, SatSolver, SatVar};
pub use smt::{DiffAtom, SmtResult, SmtSolver};
pub use stats::SolverStats;
