//! Finite-domain constraint programming: AC-3 propagation over binary
//! constraints, all-different, MRV + max-degree branching, and an
//! optional branch-and-bound optimisation mode.
//!
//! This is the oracle behind CP-formulated mappers (Raffin et al.,
//! DASIP 2010, built on JaCoP). Domains are small non-negative integer
//! sets stored as bitsets.

use std::rc::Rc;
use std::time::{Duration, Instant};

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpVar(pub usize);

/// A bitset domain over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Domain {
    words: Vec<u64>,
    count: u32,
    capacity: u32,
}

impl Domain {
    fn full(capacity: u32) -> Self {
        let nw = (capacity as usize).div_ceil(64);
        let mut words = vec![u64::MAX; nw];
        let rem = capacity as usize % 64;
        if rem != 0 {
            words[nw - 1] = (1u64 << rem) - 1;
        }
        if capacity == 0 {
            words.clear();
        }
        Domain {
            words,
            count: capacity,
            capacity,
        }
    }

    fn from_values(capacity: u32, values: &[u32]) -> Self {
        let mut d = Domain {
            words: vec![0; (capacity as usize).div_ceil(64)],
            count: 0,
            capacity,
        };
        for &v in values {
            assert!(v < capacity);
            if !d.contains(v) {
                d.words[v as usize / 64] |= 1 << (v % 64);
                d.count += 1;
            }
        }
        d
    }

    #[inline]
    fn contains(&self, v: u32) -> bool {
        self.words
            .get(v as usize / 64)
            .map(|w| w >> (v % 64) & 1 == 1)
            .unwrap_or(false)
    }

    #[inline]
    fn remove(&mut self, v: u32) -> bool {
        let w = &mut self.words[v as usize / 64];
        let bit = 1u64 << (v % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    fn assign(&mut self, v: u32) {
        for w in &mut self.words {
            *w = 0;
        }
        self.words[v as usize / 64] |= 1 << (v % 64);
        self.count = 1;
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            let mut out = Vec::new();
            while w != 0 {
                let b = w.trailing_zeros();
                out.push(wi as u32 * 64 + b);
                w &= w - 1;
            }
            out
        })
    }

    fn single(&self) -> Option<u32> {
        if self.count == 1 {
            self.iter().next()
        } else {
            None
        }
    }
}

type BinPred = Rc<dyn Fn(u32, u32) -> bool>;

enum Constraint {
    /// `pred(x_val, y_val)` must hold (evaluated per check).
    Binary {
        x: usize,
        y: usize,
        pred: BinPred,
    },
    /// Extensional binary constraint with precomputed support bitsets:
    /// `fwd[a]` is the bitset of `y`-values compatible with `x = a`,
    /// `rev[b]` the bitset of `x`-values compatible with `y = b`.
    /// Far faster to propagate than `Binary` for dense relations.
    Table {
        x: usize,
        y: usize,
        fwd: Vec<Vec<u64>>,
        rev: Vec<Vec<u64>>,
    },
    AllDifferent(Vec<usize>),
}

/// Search budget for [`CpModel::solve_with`].
#[derive(Debug, Clone, Copy)]
pub struct CpConfig {
    pub time_limit: Duration,
    pub node_limit: u64,
}

impl Default for CpConfig {
    fn default() -> Self {
        CpConfig {
            time_limit: Duration::from_secs(30),
            node_limit: 2_000_000,
        }
    }
}

/// Result of a CP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpSolution {
    /// One assignment per variable.
    Sat(Vec<u32>),
    Unsat,
    /// Budget exhausted without a proof either way.
    Unknown,
}

/// A finite-domain CSP.
pub struct CpModel {
    domains: Vec<Domain>,
    constraints: Vec<Constraint>,
    /// constraints touching each variable (for AC-3 re-queueing and the
    /// degree heuristic).
    touching: Vec<Vec<usize>>,
    nodes: u64,
    /// Search nodes across all solves (unlike `nodes`, never reset).
    total_nodes: u64,
    /// AC-3 constraint revisions performed across solves.
    revisions: u64,
    /// Domain wipe-outs (failed propagations) across solves.
    wipeouts: u64,
    /// Cooperative stop signal, polled once per search node. Inert by
    /// default; solves return `Unknown` when it fires.
    interrupt: crate::interrupt::Interrupt,
}

impl Default for CpModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CpModel {
    pub fn new() -> Self {
        CpModel {
            domains: Vec::new(),
            constraints: Vec::new(),
            touching: Vec::new(),
            nodes: 0,
            total_nodes: 0,
            revisions: 0,
            wipeouts: 0,
            interrupt: crate::interrupt::Interrupt::none(),
        }
    }

    /// Install a cooperative stop signal checked at every search node.
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.interrupt = interrupt;
    }

    /// Cumulative search-effort counters: decisions are search nodes,
    /// propagations are AC-3 constraint revisions, conflicts are domain
    /// wipe-outs. CP has no restarts.
    pub fn stats(&self) -> crate::stats::SolverStats {
        crate::stats::SolverStats {
            decisions: self.total_nodes,
            propagations: self.revisions,
            conflicts: self.wipeouts,
            ..Default::default()
        }
    }

    /// Variable with domain `0..capacity`.
    pub fn add_var(&mut self, capacity: u32) -> CpVar {
        self.domains.push(Domain::full(capacity));
        self.touching.push(Vec::new());
        CpVar(self.domains.len() - 1)
    }

    /// Variable with an explicit value set (values < capacity).
    pub fn add_var_with(&mut self, capacity: u32, values: &[u32]) -> CpVar {
        self.domains.push(Domain::from_values(capacity, values));
        self.touching.push(Vec::new());
        CpVar(self.domains.len() - 1)
    }

    /// Number of search nodes explored by the last solve.
    pub fn explored_nodes(&self) -> u64 {
        self.nodes
    }

    /// Remove a value from a variable's domain (model-level pruning).
    pub fn forbid(&mut self, v: CpVar, value: u32) {
        self.domains[v.0].remove(value);
    }

    /// Add a binary constraint `pred(x, y)`.
    pub fn binary(&mut self, x: CpVar, y: CpVar, pred: impl Fn(u32, u32) -> bool + 'static) {
        let idx = self.constraints.len();
        self.constraints.push(Constraint::Binary {
            x: x.0,
            y: y.0,
            pred: Rc::new(pred),
        });
        self.touching[x.0].push(idx);
        self.touching[y.0].push(idx);
    }

    /// Add a binary constraint as a precomputed table (the relation is
    /// evaluated once per value pair at model-build time; propagation
    /// then runs on bitset intersections).
    pub fn binary_table(&mut self, x: CpVar, y: CpVar, pred: impl Fn(u32, u32) -> bool) {
        let cap_x = self.capacity(x);
        let cap_y = self.capacity(y);
        let wy = (cap_y as usize).div_ceil(64);
        let wx = (cap_x as usize).div_ceil(64);
        let mut fwd = vec![vec![0u64; wy]; cap_x as usize];
        let mut rev = vec![vec![0u64; wx]; cap_y as usize];
        for a in 0..cap_x {
            for b in 0..cap_y {
                if pred(a, b) {
                    fwd[a as usize][b as usize / 64] |= 1 << (b % 64);
                    rev[b as usize][a as usize / 64] |= 1 << (a % 64);
                }
            }
        }
        let idx = self.constraints.len();
        self.constraints.push(Constraint::Table {
            x: x.0,
            y: y.0,
            fwd,
            rev,
        });
        self.touching[x.0].push(idx);
        self.touching[y.0].push(idx);
    }

    /// Domain capacity (in values) of a variable.
    fn capacity(&self, v: CpVar) -> u32 {
        self.domains[v.0].capacity
    }

    /// All variables take pairwise distinct values.
    pub fn all_different(&mut self, vars: &[CpVar]) {
        let idx = self.constraints.len();
        self.constraints
            .push(Constraint::AllDifferent(vars.iter().map(|v| v.0).collect()));
        for v in vars {
            self.touching[v.0].push(idx);
        }
    }

    /// AC-3 + all-different propagation to a fixpoint on `domains`.
    /// Returns false on a domain wipe-out.
    fn propagate(&mut self, domains: &mut [Domain]) -> bool {
        let ok = self.propagate_inner(domains);
        if !ok {
            self.wipeouts += 1;
        }
        ok
    }

    fn propagate_inner(&mut self, domains: &mut [Domain]) -> bool {
        let mut queue: Vec<usize> = (0..self.constraints.len()).collect();
        let mut queued = vec![true; self.constraints.len()];
        while let Some(ci) = queue.pop() {
            queued[ci] = false;
            self.revisions += 1;
            let mut touched_vars: Vec<usize> = Vec::new();
            match &self.constraints[ci] {
                Constraint::Binary { x, y, pred } => {
                    // Revise x against y and y against x.
                    for (a, b, flip) in [(*x, *y, false), (*y, *x, true)] {
                        let b_vals: Vec<u32> = domains[b].iter().collect();
                        let a_vals: Vec<u32> = domains[a].iter().collect();
                        for av in a_vals {
                            let supported =
                                b_vals.iter().any(
                                    |&bv| {
                                        if flip {
                                            pred(bv, av)
                                        } else {
                                            pred(av, bv)
                                        }
                                    },
                                );
                            if !supported {
                                domains[a].remove(av);
                                touched_vars.push(a);
                            }
                        }
                        if domains[a].count == 0 {
                            return false;
                        }
                    }
                }
                Constraint::Table { x, y, fwd, rev } => {
                    // Revise both directions on bitset intersections.
                    for (a_var, b_var, table) in [(*x, *y, fwd), (*y, *x, rev)] {
                        let a_vals: Vec<u32> = domains[a_var].iter().collect();
                        for av in a_vals {
                            let supported = table[av as usize]
                                .iter()
                                .zip(&domains[b_var].words)
                                .any(|(&t, &d)| t & d != 0);
                            if !supported {
                                domains[a_var].remove(av);
                                touched_vars.push(a_var);
                            }
                        }
                        if domains[a_var].count == 0 {
                            return false;
                        }
                    }
                }
                Constraint::AllDifferent(vars) => {
                    // Assigned values are removed from the others;
                    // pigeonhole bound check on the union.
                    let mut changed = true;
                    while changed {
                        changed = false;
                        for &v in vars {
                            if let Some(val) = domains[v].single() {
                                for &u in vars {
                                    if u != v && domains[u].remove(val) {
                                        touched_vars.push(u);
                                        changed = true;
                                        if domains[u].count == 0 {
                                            return false;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Union cardinality bound.
                    let mut union = vec![
                        0u64;
                        domains[vars[0]].words.len().max(
                            vars.iter()
                                .map(|&v| domains[v].words.len())
                                .max()
                                .unwrap_or(0)
                        )
                    ];
                    for &v in vars {
                        for (i, w) in domains[v].words.iter().enumerate() {
                            union[i] |= w;
                        }
                    }
                    let total: u32 = union.iter().map(|w| w.count_ones()).sum();
                    if (total as usize) < vars.len() {
                        return false;
                    }
                }
            }
            for v in touched_vars {
                for &c2 in &self.touching[v] {
                    if !queued[c2] {
                        queued[c2] = true;
                        queue.push(c2);
                    }
                }
            }
        }
        true
    }

    /// Find one solution with the default budget.
    pub fn solve(&mut self) -> CpSolution {
        self.solve_with(CpConfig::default())
    }

    /// Find one solution with an explicit budget.
    pub fn solve_with(&mut self, cfg: CpConfig) -> CpSolution {
        self.nodes = 0;
        let mut domains = self.domains.clone();
        if !self.propagate(&mut domains) {
            return CpSolution::Unsat;
        }
        let start = Instant::now();
        match self.search(&mut domains, &cfg, &start) {
            SearchOutcome::Found(sol) => CpSolution::Sat(sol),
            SearchOutcome::Exhausted => CpSolution::Unsat,
            SearchOutcome::Budget => CpSolution::Unknown,
        }
    }

    fn search(&mut self, domains: &mut [Domain], cfg: &CpConfig, start: &Instant) -> SearchOutcome {
        self.nodes += 1;
        self.total_nodes += 1;
        if self.nodes > cfg.node_limit
            || start.elapsed() > cfg.time_limit
            || self.interrupt.should_stop()
        {
            return SearchOutcome::Budget;
        }
        // MRV with max-degree tiebreak.
        let pick = (0..domains.len())
            .filter(|&v| domains[v].count > 1)
            .min_by_key(|&v| (domains[v].count, usize::MAX - self.touching[v].len()));
        let Some(var) = pick else {
            // All singletons: verify (propagation should guarantee it,
            // but all-different's bound check is incomplete).
            let sol: Vec<u32> = domains.iter().map(|d| d.single().unwrap()).collect();
            return if self.check(&sol) {
                SearchOutcome::Found(sol)
            } else {
                SearchOutcome::Exhausted
            };
        };
        let values: Vec<u32> = domains[var].iter().collect();
        let mut budget_hit = false;
        for val in values {
            let mut child = domains.to_vec();
            child[var].assign(val);
            if self.propagate(&mut child) {
                match self.search(&mut child, cfg, start) {
                    SearchOutcome::Found(s) => return SearchOutcome::Found(s),
                    SearchOutcome::Budget => {
                        budget_hit = true;
                        break;
                    }
                    SearchOutcome::Exhausted => {}
                }
            }
        }
        if budget_hit {
            SearchOutcome::Budget
        } else {
            SearchOutcome::Exhausted
        }
    }

    /// Check a full assignment against every constraint.
    pub fn check(&self, sol: &[u32]) -> bool {
        self.constraints.iter().all(|c| match c {
            Constraint::Binary { x, y, pred } => pred(sol[*x], sol[*y]),
            Constraint::Table { x, y, fwd, .. } => {
                let (a, b) = (sol[*x], sol[*y]);
                fwd[a as usize][b as usize / 64] >> (b % 64) & 1 == 1
            }
            Constraint::AllDifferent(vars) => {
                let mut vals: Vec<u32> = vars.iter().map(|&v| sol[v]).collect();
                vals.sort_unstable();
                vals.windows(2).all(|w| w[0] != w[1])
            }
        })
    }

    /// Branch-and-bound minimisation of `sum cost(var, value)`.
    ///
    /// Depth-first search with propagation; a subtree is pruned when
    /// the admissible lower bound (sum over every variable of the
    /// minimum cost in its remaining domain) cannot beat the incumbent.
    /// Returns the best solution found and whether optimality was
    /// proven (budget not exhausted).
    pub fn minimize(
        &mut self,
        cost: impl Fn(usize, u32) -> i64,
        cfg: CpConfig,
    ) -> (Option<(Vec<u32>, i64)>, bool) {
        self.nodes = 0;
        let mut domains = self.domains.clone();
        if !self.propagate(&mut domains) {
            return (None, true);
        }
        let start = Instant::now();
        let mut best: Option<(Vec<u32>, i64)> = None;
        let complete = self.bb_search(&mut domains, &cost, &mut best, &cfg, &start);
        (best, complete)
    }

    /// Returns true if the subtree was fully explored within budget.
    fn bb_search(
        &mut self,
        domains: &mut [Domain],
        cost: &impl Fn(usize, u32) -> i64,
        best: &mut Option<(Vec<u32>, i64)>,
        cfg: &CpConfig,
        start: &Instant,
    ) -> bool {
        self.nodes += 1;
        self.total_nodes += 1;
        if self.nodes > cfg.node_limit
            || start.elapsed() > cfg.time_limit
            || self.interrupt.should_stop()
        {
            return false;
        }
        // Admissible lower bound on the total cost in this subtree.
        let lb: i64 = domains
            .iter()
            .enumerate()
            .map(|(v, d)| d.iter().map(|val| cost(v, val)).min().unwrap_or(0))
            .sum();
        if let Some((_, inc)) = best {
            if lb >= *inc {
                return true; // pruned, but fully accounted for
            }
        }
        let pick = (0..domains.len())
            .filter(|&v| domains[v].count > 1)
            .min_by_key(|&v| (domains[v].count, usize::MAX - self.touching[v].len()));
        let Some(var) = pick else {
            let sol: Vec<u32> = domains.iter().map(|d| d.single().unwrap()).collect();
            if self.check(&sol) {
                let c: i64 = sol.iter().enumerate().map(|(v, &val)| cost(v, val)).sum();
                if best.as_ref().map(|(_, b)| c < *b).unwrap_or(true) {
                    *best = Some((sol, c));
                }
            }
            return true;
        };
        // Cheapest value first.
        let mut values: Vec<u32> = domains[var].iter().collect();
        values.sort_by_key(|&val| cost(var, val));
        let mut complete = true;
        for val in values {
            let mut child = domains.to_vec();
            child[var].assign(val);
            if self.propagate(&mut child) {
                complete &= self.bb_search(&mut child, cost, best, cfg, start);
                if !complete {
                    break;
                }
            }
        }
        complete
    }
}

enum SearchOutcome {
    Found(Vec<u32>),
    Exhausted,
    Budget,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_binary_constraint() {
        let mut m = CpModel::new();
        let x = m.add_var(5);
        let y = m.add_var(5);
        m.binary(x, y, |a, b| a + 2 == b);
        match m.solve() {
            CpSolution::Sat(s) => assert_eq!(s[0] + 2, s[1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsat_binary() {
        let mut m = CpModel::new();
        let x = m.add_var(3);
        let y = m.add_var(3);
        m.binary(x, y, |a, b| a > b + 10);
        assert_eq!(m.solve(), CpSolution::Unsat);
    }

    #[test]
    fn all_different_permutation() {
        let mut m = CpModel::new();
        let vars: Vec<CpVar> = (0..5).map(|_| m.add_var(5)).collect();
        m.all_different(&vars);
        match m.solve() {
            CpSolution::Sat(s) => {
                let mut sorted = s.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_different_pigeonhole_unsat() {
        let mut m = CpModel::new();
        let vars: Vec<CpVar> = (0..4).map(|_| m.add_var(3)).collect();
        m.all_different(&vars);
        assert_eq!(m.solve(), CpSolution::Unsat);
    }

    #[test]
    fn n_queens_6() {
        // Classic CSP: 6-queens has solutions.
        let n = 6u32;
        let mut m = CpModel::new();
        let cols: Vec<CpVar> = (0..n).map(|_| m.add_var(n)).collect();
        m.all_different(&cols);
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let d = (j - i) as u32;
                m.binary(cols[i], cols[j], move |a, b| a.abs_diff(b) != d);
            }
        }
        match m.solve() {
            CpSolution::Sat(s) => {
                for i in 0..n as usize {
                    for j in (i + 1)..n as usize {
                        assert_ne!(s[i], s[j]);
                        assert_ne!(s[i].abs_diff(s[j]), (j - i) as u32);
                    }
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restricted_domains() {
        let mut m = CpModel::new();
        let x = m.add_var_with(10, &[2, 4, 6]);
        let y = m.add_var_with(10, &[1, 2, 3]);
        m.binary(x, y, |a, b| a == 2 * b);
        match m.solve() {
            CpSolution::Sat(s) => {
                assert!(s[0] == 2 * s[1]);
                assert!([2, 4, 6].contains(&s[0]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forbid_prunes() {
        let mut m = CpModel::new();
        let x = m.add_var(2);
        m.forbid(x, 0);
        match m.solve() {
            CpSolution::Sat(s) => assert_eq!(s[0], 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn budget_reports_unknown() {
        // 12-queens with a 1-node budget cannot finish.
        let n = 12u32;
        let mut m = CpModel::new();
        let cols: Vec<CpVar> = (0..n).map(|_| m.add_var(n)).collect();
        m.all_different(&cols);
        for i in 0..n as usize {
            for j in (i + 1)..n as usize {
                let d = (j - i) as u32;
                m.binary(cols[i], cols[j], move |a, b| a.abs_diff(b) != d);
            }
        }
        let r = m.solve_with(CpConfig {
            time_limit: Duration::from_secs(30),
            node_limit: 1,
        });
        assert_eq!(r, CpSolution::Unknown);
    }

    #[test]
    fn minimize_finds_a_good_solution() {
        let mut m = CpModel::new();
        let x = m.add_var(4);
        let y = m.add_var(4);
        m.binary(x, y, |a, b| a != b);
        let (best, proven) = m.minimize(|_, val| val as i64, CpConfig::default());
        let (sol, cost) = best.expect("feasible");
        assert!(m.check(&sol));
        assert_eq!(cost, 1); // optimum is {0,1} in some order
        assert!(proven);
    }

    #[test]
    fn binary_table_matches_closure_semantics() {
        // Same model expressed both ways must agree.
        let build = |table: bool| {
            let mut m = CpModel::new();
            let x = m.add_var(6);
            let y = m.add_var(6);
            if table {
                m.binary_table(x, y, |a, b| a + b == 7);
            } else {
                m.binary(x, y, |a, b| a + b == 7);
            }
            m.solve()
        };
        match (build(true), build(false)) {
            (CpSolution::Sat(a), CpSolution::Sat(b)) => {
                assert_eq!(a[0] + a[1], 7);
                assert_eq!(b[0] + b[1], 7);
            }
            other => panic!("{other:?}"),
        }
        // And an unsatisfiable relation.
        let mut m = CpModel::new();
        let x = m.add_var(3);
        let y = m.add_var(3);
        m.binary_table(x, y, |a, b| a + b > 100);
        assert_eq!(m.solve(), CpSolution::Unsat);
    }

    #[test]
    fn propagation_alone_solves_chains() {
        // x0=3 fixed by domain, x_{i+1} = x_i + 1 via binary constraints:
        // propagation should solve without search beyond MRV picks.
        let mut m = CpModel::new();
        let vars: Vec<CpVar> = (0..5).map(|_| m.add_var(10)).collect();
        let first = m.add_var_with(10, &[3]);
        m.binary(first, vars[0], |a, b| b == a + 1);
        for w in vars.windows(2) {
            let (a, b) = (w[0], w[1]);
            m.binary(a, b, |x, y| y == x + 1);
        }
        match m.solve() {
            CpSolution::Sat(s) => {
                assert_eq!(&s[..5], &[4, 5, 6, 7, 8]);
            }
            other => panic!("{other:?}"),
        }
    }
}
