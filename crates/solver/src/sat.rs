//! A CDCL SAT solver: two-watched-literal propagation, VSIDS variable
//! activity, first-UIP conflict analysis with non-chronological
//! backjumping, phase saving, and Luby restarts.
//!
//! The design follows MiniSat's architecture, sized for the CNF
//! encodings of CGRA mapping (Miyasaka et al., VLSI-SoC 2021): a few
//! thousand variables, tens of thousands of clauses.
//!
//! ## Incremental solving
//!
//! The solver is *incremental* in the MiniSat sense, which is how the
//! SAT-MapIt lineage amortises an II sweep into one solver instance:
//!
//! * [`SatSolver::solve_with_assumptions`] solves under a set of
//!   literals that hold for this call only; clauses (including every
//!   learnt clause) persist across calls, so conflicts discovered at
//!   II=k prune the search at II=k+1;
//! * learnt clauses carry activities and are garbage-collected by
//!   [`reduce_db`](SatSolver) once the database outgrows its budget,
//!   keeping long-lived incremental solvers bounded;
//! * a push/pop-style removable layer: guard a clause group with a
//!   selector from [`SatSolver::new_selector`] via
//!   [`SatSolver::add_clause_under`], activate it by assuming the
//!   selector, and permanently drop it with
//!   [`SatSolver::retire_selector`]. Selectors only ever appear
//!   negatively in guarded clauses, so an unassumed group never
//!   constrains the search.

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(pub u32);

/// A literal: variable plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    #[inline]
    pub fn pos(v: SatVar) -> Lit {
        Lit(v.0 << 1)
    }

    #[inline]
    pub fn neg(v: SatVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    #[inline]
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; `model[var]` gives the assignment.
    Sat(Vec<bool>),
    Unsat,
    /// Conflict budget exhausted.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Undef,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Bumped when the clause participates in conflict analysis;
    /// clause-database reduction evicts the coldest learnt clauses.
    activity: f64,
}

/// The CDCL solver.
pub struct SatSolver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// watches[lit] = clauses watching `lit` (i.e. containing it among
    /// their first two literals).
    watches: Vec<Vec<u32>>,
    assign: Vec<Value>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    /// Clause-activity increment (decayed alongside `var_inc`).
    cla_inc: f64,
    /// Learnt clauses currently in the database.
    num_learnts: usize,
    /// Learnt-clause budget before `reduce_db` fires (0 = not yet
    /// sized; initialised on the first solve from the original count).
    max_learnts: usize,
    /// Set at level 0 when the formula is trivially unsatisfiable.
    unsat: bool,
    /// Statistics: total conflicts seen.
    pub conflicts: u64,
    /// Statistics: total branching decisions made.
    pub decisions: u64,
    /// Statistics: total literals propagated.
    pub propagations: u64,
    /// Statistics: total Luby restarts performed.
    pub restarts: u64,
    /// Statistics: solves answered under a non-empty assumption set.
    pub assumption_solves: u64,
    /// Statistics: learnt clauses surviving database reductions.
    pub learnt_kept: u64,
    /// Statistics: learnt clauses evicted by database reductions.
    pub learnt_gcd: u64,
    /// Conflict budget for `solve` (u64::MAX = off).
    pub conflict_budget: u64,
    /// Cooperative stop signal, polled once per CDCL loop iteration.
    /// Inert by default; `solve` returns `Unknown` when it fires.
    pub interrupt: crate::interrupt::Interrupt,
    /// Final-conflict core of the last assumption solve (see
    /// [`SatSolver::failed_assumptions`]).
    failed: Vec<Lit>,
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    pub fn new() -> Self {
        SatSolver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            num_learnts: 0,
            max_learnts: 0,
            unsat: false,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
            assumption_solves: 0,
            learnt_kept: 0,
            learnt_gcd: 0,
            conflict_budget: u64::MAX,
            interrupt: crate::interrupt::Interrupt::none(),
            failed: Vec::new(),
        }
    }

    /// Cumulative search-effort counters.
    pub fn stats(&self) -> crate::stats::SolverStats {
        crate::stats::SolverStats {
            decisions: self.decisions,
            propagations: self.propagations,
            conflicts: self.conflicts,
            restarts: self.restarts,
            assumption_solves: self.assumption_solves,
            learnt_kept: self.learnt_kept,
            learnt_gcd: self.learnt_gcd,
            warm_pivots_saved: 0,
        }
    }

    /// Create a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.num_vars);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assign.push(Value::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    #[inline]
    fn value(&self, l: Lit) -> Value {
        match self.assign[l.var().0 as usize] {
            Value::Undef => Value::Undef,
            Value::True => {
                if l.is_neg() {
                    Value::False
                } else {
                    Value::True
                }
            }
            Value::False => {
                if l.is_neg() {
                    Value::True
                } else {
                    Value::False
                }
            }
        }
    }

    /// Add a clause (empty ⇒ unsat, unit ⇒ top-level assignment).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(self.trail_lim.is_empty(), "add clauses before solving");
        if self.unsat {
            return;
        }
        // Deduplicate and drop tautologies.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_by_key(|l| l.0);
        ls.dedup();
        for w in ls.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x: tautology
            }
        }
        // Drop already-false top-level literals, check satisfied.
        ls.retain(|&l| self.value(l) != Value::False);
        if ls.iter().any(|&l| self.value(l) == Value::True) {
            return;
        }
        match ls.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(ls[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[ls[0].negate().index()].push(idx);
                self.watches[ls[1].negate().index()].push(idx);
                self.clauses.push(Clause {
                    lits: ls,
                    learnt: false,
                    activity: 0.0,
                });
            }
        }
    }

    /// Create a selector literal for a removable clause group.
    ///
    /// Selectors are ordinary variables whose saved phase starts
    /// `false`, so an unassumed group costs nothing in search. Guarded
    /// clauses only contain the selector negatively, which keeps the
    /// group inert unless the selector is assumed true.
    pub fn new_selector(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }

    /// Add `lits` guarded by `sel`: the clause only constrains solves
    /// that assume `sel` (it is recorded as `¬sel ∨ lits`).
    pub fn add_clause_under(&mut self, sel: Lit, lits: &[Lit]) {
        let mut guarded = Vec::with_capacity(lits.len() + 1);
        guarded.push(sel.negate());
        guarded.extend_from_slice(lits);
        self.add_clause(&guarded);
    }

    /// Permanently deactivate a selector's clause group (MiniSat-style
    /// "pop"): asserting `¬sel` at the top level satisfies every clause
    /// added under it, and level-0 simplification in `reduce_db` will
    /// physically drop them on the next pass.
    pub fn retire_selector(&mut self, sel: Lit) {
        self.add_clause(&[sel.negate()]);
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) {
        let v = l.var().0 as usize;
        debug_assert_eq!(self.assign[v], Value::Undef);
        self.assign[v] = if l.is_neg() {
            Value::False
        } else {
            Value::True
        };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let p = self.trail[self.prop_head];
            self.prop_head += 1;
            self.propagations += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let falsified = p.negate();
                // Normalise: ensure lits[1] is the falsified watch.
                let (first, need_new) = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == falsified {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], falsified);
                    (c.lits[0], true)
                };
                let _ = need_new;
                if self.value(first) == Value::True {
                    i += 1;
                    continue; // clause satisfied
                }
                // Look for a new watchable literal.
                let mut moved = false;
                {
                    let c = &mut self.clauses[ci as usize];
                    for k in 2..c.lits.len() {
                        // A literal not currently false can be watched.
                        let lk = c.lits[k];
                        let val = match self.assign[lk.var().0 as usize] {
                            Value::Undef => Value::Undef,
                            Value::True => {
                                if lk.is_neg() {
                                    Value::False
                                } else {
                                    Value::True
                                }
                            }
                            Value::False => {
                                if lk.is_neg() {
                                    Value::True
                                } else {
                                    Value::False
                                }
                            }
                        };
                        if val != Value::False {
                            c.lits.swap(1, k);
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    let new_watch = self.clauses[ci as usize].lits[1];
                    self.watches[new_watch.negate().index()].push(ci);
                    ws.swap_remove(i);
                    continue;
                }
                // No new watch: clause is unit or conflicting.
                if self.value(first) == Value::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[p.index()].extend_from_slice(&ws[i..]);
                    ws.truncate(i);
                    self.watches[p.index()].extend(ws);
                    self.prop_head = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(first, Some(ci));
                i += 1;
            }
            // Put back the (possibly shrunk) watch list.
            let existing = std::mem::take(&mut self.watches[p.index()]);
            let mut merged = ws;
            merged.extend(existing);
            self.watches[p.index()] = merged;
        }
        None
    }

    fn cla_bump(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn bump(&mut self, v: SatVar) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause with the
    /// asserting literal first, backjump level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut seen = vec![false; self.num_vars as usize];
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause = confl;
        let mut idx = self.trail.len();

        loop {
            self.cla_bump(clause);
            let lits: Vec<Lit> = self.clauses[clause as usize].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue;
                }
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal to resolve on: last trail literal seen.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var();
            seen[pv.0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            clause = self.reason[pv.0 as usize].expect("non-decision must have a reason");
        }

        // Backjump level: highest level among learnt[1..].
        let bt = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of level bt at position 1 (watch invariant).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var().0 as usize] == bt)
                .unwrap()
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, bt)
    }

    /// The subset of the last [`solve_with_assumptions`] call's
    /// assumptions that formed the final conflict — a (not necessarily
    /// minimal) unsat core over the assumption set. Empty when the
    /// formula is unsatisfiable on its own, or when the last solve was
    /// not `Unsat`.
    ///
    /// [`solve_with_assumptions`]: SatSolver::solve_with_assumptions
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// MiniSat's `analyzeFinal`: `a` is an assumption falsified by the
    /// current trail (which holds only assumption decisions and their
    /// propagations). Walk reason chains backward from `a`'s variable;
    /// every decision reached is an earlier assumption, and together
    /// with `a` they form the conflict core. Must run *before*
    /// `cancel_until(0)` tears the trail down.
    fn analyze_final(&self, a: Lit) -> Vec<Lit> {
        let mut out = vec![a];
        if self.trail_lim.is_empty() {
            return out;
        }
        let mut seen = vec![false; self.num_vars as usize];
        seen[a.var().0 as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            if !seen[v] {
                continue;
            }
            match self.reason[v] {
                // A decision above level 0 during assumption
                // establishment is itself an assumption.
                None => out.push(l),
                Some(ci) => {
                    for &q in &self.clauses[ci as usize].lits {
                        if self.level[q.var().0 as usize] > 0 {
                            seen[q.var().0 as usize] = true;
                        }
                    }
                }
            }
            seen[v] = false;
        }
        out
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                let v = l.var().0 as usize;
                self.assign[v] = Value::Undef;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars as usize {
            if self.assign[v] == Value::Undef {
                let a = self.activity[v];
                if best.map(|(_, ba)| a > ba).unwrap_or(true) {
                    best = Some((v, a));
                }
            }
        }
        best.map(|(v, _)| {
            if self.phase[v] {
                Lit::pos(SatVar(v as u32))
            } else {
                Lit::neg(SatVar(v as u32))
            }
        })
    }

    /// Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
    /// (MiniSat's formulation with base 2).
    fn luby(mut x: u64) -> u64 {
        let mut size: u64 = 1;
        let mut seq: u32 = 0;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Override the learnt-clause budget that triggers database
    /// reduction (default: `max(2000, originals / 2)`, sized on the
    /// first solve and grown ×4/3 per reduction).
    pub fn set_learnt_budget(&mut self, n: usize) {
        self.max_learnts = n.max(16);
    }

    /// Evict the coldest half of the long learnt clauses and simplify
    /// the database against the (permanent) level-0 assignment.
    ///
    /// Only callable at decision level 0. Level-0 reasons are never
    /// consulted by `analyze` (it skips level-0 literals), so they can
    /// be cleared, which frees every clause index for compaction.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty());
        for r in &mut self.reason {
            *r = None;
        }
        // Rank long learnt clauses by activity; the coldest half goes.
        let mut ranked: Vec<(f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && c.lits.len() > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut drop = vec![false; self.clauses.len()];
        for &(_, i) in ranked.iter().take(ranked.len() / 2) {
            drop[i] = true;
        }

        let old = std::mem::take(&mut self.clauses);
        for w in &mut self.watches {
            w.clear();
        }
        self.num_learnts = 0;
        for (i, mut c) in old.into_iter().enumerate() {
            if c.learnt && drop[i] {
                self.learnt_gcd += 1;
                continue;
            }
            // Simplify against the permanent assignment: a true literal
            // retires the clause, false literals are dropped.
            if c.lits.iter().any(|&l| self.value(l) == Value::True) {
                if c.learnt {
                    self.learnt_gcd += 1;
                }
                continue;
            }
            c.lits.retain(|&l| self.value(l) != Value::False);
            match c.lits.len() {
                0 => {
                    self.unsat = true;
                    return;
                }
                1 => {
                    self.enqueue(c.lits[0], None);
                    if c.learnt {
                        self.learnt_gcd += 1;
                    }
                }
                _ => {
                    let idx = self.clauses.len() as u32;
                    self.watches[c.lits[0].negate().index()].push(idx);
                    self.watches[c.lits[1].negate().index()].push(idx);
                    if c.learnt {
                        self.num_learnts += 1;
                        self.learnt_kept += 1;
                    }
                    self.clauses.push(c);
                }
            }
        }
        if self.propagate().is_some() {
            self.unsat = true;
        }
    }

    /// Solve the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under `assumptions`: literals that hold for this call
    /// only. All clauses — learnt ones included — persist for the next
    /// call, which is what makes adjacent-II solves cheap.
    ///
    /// `Unsat` under a non-empty assumption set means the formula has
    /// no model extending the assumptions; the solver itself stays
    /// usable (only a conflict at level 0 is permanent).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !assumptions.is_empty() {
            self.assumption_solves += 1;
        }
        self.failed.clear();
        if self.unsat {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        if self.max_learnts == 0 {
            self.max_learnts = (self.clauses.len() / 2).max(2000);
        } else if self.num_learnts > self.max_learnts {
            self.reduce_db();
            if self.unsat {
                return SatResult::Unsat;
            }
        }
        let mut restart_count = 0u64;
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100 * Self::luby(0);

        loop {
            if self.interrupt.should_stop() {
                self.cancel_until(0);
                return SatResult::Unknown;
            }
            match self.propagate() {
                Some(confl) => {
                    self.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.conflicts > self.conflict_budget {
                        self.cancel_until(0);
                        return SatResult::Unknown;
                    }
                    if self.trail_lim.is_empty() {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                    let (learnt, bt) = self.analyze(confl);
                    self.cancel_until(bt);
                    let asserting = learnt[0];
                    if learnt.len() == 1 {
                        self.enqueue(asserting, None);
                    } else {
                        let idx = self.clauses.len() as u32;
                        self.watches[learnt[0].negate().index()].push(idx);
                        self.watches[learnt[1].negate().index()].push(idx);
                        self.num_learnts += 1;
                        self.clauses.push(Clause {
                            lits: learnt,
                            learnt: true,
                            activity: self.cla_inc,
                        });
                        self.enqueue(asserting, Some(idx));
                    }
                    self.var_inc /= 0.95; // VSIDS decay
                    self.cla_inc /= 0.999;
                }
                None => {
                    if conflicts_since_restart >= restart_limit && !self.trail_lim.is_empty() {
                        restart_count += 1;
                        self.restarts += 1;
                        conflicts_since_restart = 0;
                        restart_limit = 100 * Self::luby(restart_count);
                        self.cancel_until(0);
                        if self.num_learnts > self.max_learnts {
                            self.reduce_db();
                            self.max_learnts += self.max_learnts / 3;
                            if self.unsat {
                                return SatResult::Unsat;
                            }
                        }
                        continue;
                    }
                    // Establish any assumption not yet decided: each one
                    // opens its own decision level (a dummy level if it
                    // is already implied), so conflict analysis can
                    // still backjump between assumptions and restarts
                    // simply re-establish them.
                    let dl = self.trail_lim.len();
                    if dl < assumptions.len() {
                        let a = assumptions[dl];
                        match self.value(a) {
                            Value::True => {
                                self.trail_lim.push(self.trail.len());
                            }
                            Value::False => {
                                // The formula (plus earlier assumptions)
                                // implies ¬a: unsat under assumptions,
                                // but the solver stays reusable. Extract
                                // the final-conflict core while the
                                // trail still exists.
                                self.failed = self.analyze_final(a);
                                self.cancel_until(0);
                                return SatResult::Unsat;
                            }
                            Value::Undef => {
                                self.decisions += 1;
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, None);
                            }
                        }
                        continue;
                    }
                    match self.decide() {
                        None => {
                            let model = self.assign.iter().map(|&v| v == Value::True).collect();
                            self.cancel_until(0);
                            return SatResult::Sat(model);
                        }
                        Some(l) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(l, None);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    // Pigeonhole encodings index `p[a][hole]`/`p[b][hole]` — the range
    // loop is the clearest form.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn v(s: &mut SatSolver, n: usize) -> Vec<SatVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        s.add_clause(&[Lit::pos(x)]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m[0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        s.add_clause(&[Lit::pos(x)]);
        s.add_clause(&[Lit::neg(x)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = SatSolver::new();
        let _ = s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 and (¬x_i ∨ x_{i+1}) for a chain — all must be true.
        let mut s = SatSolver::new();
        let vars = v(&mut s, 20);
        s.add_clause(&[Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        match s.solve() {
            SatResult::Sat(m) => assert!(m.iter().all(|&b| b)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes — classically UNSAT and requires
        // real conflict analysis.
        let mut s = SatSolver::new();
        let p: Vec<Vec<SatVar>> = (0..3).map(|_| v(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for hole in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][hole]), Lit::neg(p[b][hole])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let mut s = SatSolver::new();
        let p: Vec<Vec<SatVar>> = (0..4).map(|_| v(&mut s, 3)).collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
            s.add_clause(&c);
        }
        for hole in 0..3 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    s.add_clause(&[Lit::neg(p[a][hole]), Lit::neg(p[b][hole])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn graph_coloring_triangle() {
        // A triangle is 3-colourable but not 2-colourable.
        let color_model = |colors: usize| -> SatResult {
            let mut s = SatSolver::new();
            let x: Vec<Vec<SatVar>> = (0..3).map(|_| v(&mut s, colors)).collect();
            for node in &x {
                let c: Vec<Lit> = node.iter().map(|&y| Lit::pos(y)).collect();
                s.add_clause(&c);
            }
            for (a, b) in [(0, 1), (1, 2), (0, 2)] {
                for c in 0..colors {
                    s.add_clause(&[Lit::neg(x[a][c]), Lit::neg(x[b][c])]);
                }
            }
            s.solve()
        };
        assert_eq!(color_model(2), SatResult::Unsat);
        assert!(matches!(color_model(3), SatResult::Sat(_)));
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Random-ish structured instance; verify the returned model.
        let mut s = SatSolver::new();
        let vars = v(&mut s, 12);
        let clauses: Vec<Vec<Lit>> = (0..40)
            .map(|i| {
                let a = vars[(i * 7 + 1) % 12];
                let b = vars[(i * 5 + 3) % 12];
                let c = vars[(i * 11 + 5) % 12];
                vec![
                    if i % 2 == 0 { Lit::pos(a) } else { Lit::neg(a) },
                    if i % 3 == 0 { Lit::pos(b) } else { Lit::neg(b) },
                    if i % 5 == 0 { Lit::pos(c) } else { Lit::neg(c) },
                ]
            })
            .collect();
        for c in &clauses {
            s.add_clause(c);
        }
        match s.solve() {
            SatResult::Sat(m) => {
                for c in &clauses {
                    assert!(c.iter().any(|l| {
                        let val = m[l.var().0 as usize];
                        if l.is_neg() {
                            !val
                        } else {
                            val
                        }
                    }));
                }
            }
            SatResult::Unsat => {
                /* fine if genuinely unsat — but then
                verify by brute force below */
                let n = vars.len();
                for bits in 0..(1u32 << n) {
                    let m: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    let ok = clauses.iter().all(|c| {
                        c.iter().any(|l| {
                            let val = m[l.var().0 as usize];
                            if l.is_neg() {
                                !val
                            } else {
                                val
                            }
                        })
                    });
                    assert!(!ok, "solver said UNSAT but {bits:b} satisfies");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[Lit::pos(x), Lit::pos(x), Lit::neg(y)]);
        s.add_clause(&[Lit::pos(y), Lit::neg(y)]); // tautology: ignored
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    /// PHP(pigeons, holes) clauses, each guarded by `sel` when given.
    fn add_php(s: &mut SatSolver, pigeons: usize, holes: usize, sel: Option<Lit>) {
        let p: Vec<Vec<SatVar>> = (0..pigeons).map(|_| v(s, holes)).collect();
        let add = |s: &mut SatSolver, lits: &[Lit]| match sel {
            Some(g) => s.add_clause_under(g, lits),
            None => s.add_clause(lits),
        };
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
            add(s, &c);
        }
        for hole in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    add(s, &[Lit::neg(p[a][hole]), Lit::neg(p[b][hole])]);
                }
            }
        }
    }

    #[test]
    fn assumptions_behave_like_temporary_units() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[Lit::pos(x), Lit::pos(y)]);
        match s.solve_with_assumptions(&[Lit::neg(x)]) {
            SatResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(x), Lit::neg(y)]),
            SatResult::Unsat
        );
        // Unsat under assumptions is not permanent.
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        assert!(matches!(
            s.solve_with_assumptions(&[Lit::pos(x)]),
            SatResult::Sat(_)
        ));
        assert_eq!(s.stats().assumption_solves, 3);
    }

    #[test]
    fn selector_groups_gate_and_retire() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        let a = s.new_selector();
        let b = s.new_selector();
        s.add_clause_under(a, &[Lit::pos(x)]);
        s.add_clause_under(b, &[Lit::neg(x)]);
        match s.solve_with_assumptions(&[a]) {
            SatResult::Sat(m) => assert!(m[x.0 as usize]),
            other => panic!("{other:?}"),
        }
        match s.solve_with_assumptions(&[b]) {
            SatResult::Sat(m) => assert!(!m[x.0 as usize]),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.solve_with_assumptions(&[a, b]), SatResult::Unsat);
        s.retire_selector(b);
        assert!(matches!(s.solve_with_assumptions(&[a]), SatResult::Sat(_)));
        assert_eq!(s.solve_with_assumptions(&[b]), SatResult::Unsat);
        // The solver itself stays satisfiable.
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    #[test]
    fn learnt_clauses_persist_across_assumption_solves() {
        // PHP(6,5) guarded by a selector: Unsat under the assumption,
        // and the clauses learnt on the first call make the second call
        // near-free (the refutation persists as unit ¬sel at level 0).
        let mut s = SatSolver::new();
        let sel = s.new_selector();
        add_php(&mut s, 6, 5, Some(sel));
        assert_eq!(s.solve_with_assumptions(&[sel]), SatResult::Unsat);
        let first = s.conflicts;
        assert!(first > 0);
        assert_eq!(s.solve_with_assumptions(&[sel]), SatResult::Unsat);
        let second = s.conflicts - first;
        assert!(
            second < first,
            "repeat solve should reuse learnt clauses ({second} vs {first})"
        );
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    #[test]
    fn clause_db_reduction_is_sound_and_bounded() {
        let mut s = SatSolver::new();
        let sel = s.new_selector();
        add_php(&mut s, 7, 6, Some(sel));
        s.set_learnt_budget(24);
        assert_eq!(s.solve_with_assumptions(&[sel]), SatResult::Unsat);
        let st = s.stats();
        assert!(st.learnt_gcd > 0, "tiny budget must trigger GC");
        // Result is still correct after (possibly many) reductions, and
        // the solver remains usable.
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        assert_eq!(s.solve_with_assumptions(&[sel]), SatResult::Unsat);
    }

    #[test]
    fn incremental_unsat_is_permanent_only_at_level_zero() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        s.add_clause(&[Lit::pos(x)]);
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        // Adding the contradicting unit after a solve makes the formula
        // permanently unsat, assumptions or not.
        s.add_clause(&[Lit::neg(x)]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[Lit::pos(x)]), SatResult::Unsat);
    }

    #[test]
    fn failed_assumptions_name_the_conflicting_subset() {
        // ¬x ∨ ¬y makes {x, y} jointly inconsistent; z is innocent.
        let mut s = SatSolver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause(&[Lit::neg(x), Lit::neg(y)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(x), Lit::pos(z), Lit::pos(y)]),
            SatResult::Unsat
        );
        let mut core = s.failed_assumptions().to_vec();
        core.sort_by_key(|l| l.var().0);
        assert_eq!(core, vec![Lit::pos(x), Lit::pos(y)]);
        // A satisfiable call clears the core.
        assert!(matches!(
            s.solve_with_assumptions(&[Lit::pos(x)]),
            SatResult::Sat(_)
        ));
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_empty_when_formula_unsat_alone() {
        let mut s = SatSolver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause(&[Lit::pos(x)]);
        s.add_clause(&[Lit::neg(x)]);
        assert_eq!(s.solve_with_assumptions(&[Lit::pos(y)]), SatResult::Unsat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_cover_selector_layers() {
        // Two selector-guarded groups force x and ¬x; a third selector
        // guards an unrelated satisfiable group and must stay out of
        // the core. The conflict here surfaces through a learnt clause
        // (a's group propagates x, b's refutes it), exercising the
        // reason-chain walk rather than direct falsification.
        let mut s = SatSolver::new();
        let x = s.new_var();
        let w = s.new_var();
        let a = s.new_selector();
        let b = s.new_selector();
        let c = s.new_selector();
        s.add_clause_under(a, &[Lit::pos(x)]);
        s.add_clause_under(b, &[Lit::neg(x)]);
        s.add_clause_under(c, &[Lit::pos(w)]);
        assert_eq!(s.solve_with_assumptions(&[c, a, b]), SatResult::Unsat);
        let mut core = s.failed_assumptions().to_vec();
        core.sort_by_key(|l| l.var().0);
        let mut expect = vec![a, b];
        expect.sort_by_key(|l| l.var().0);
        assert_eq!(core, expect);
        // Core literals are always drawn from the assumption set.
        for l in s.failed_assumptions() {
            assert!([c, a, b].contains(l));
        }
    }

    #[test]
    fn budget_returns_unknown() {
        // PHP(6,5) takes > 1 conflict.
        let mut s = SatSolver::new();
        let p: Vec<Vec<SatVar>> = (0..6).map(|_| v(&mut s, 5)).collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|&x| Lit::pos(x)).collect();
            s.add_clause(&c);
        }
        for hole in 0..5 {
            for a in 0..6 {
                for b in (a + 1)..6 {
                    s.add_clause(&[Lit::neg(p[a][hole]), Lit::neg(p[b][hole])]);
                }
            }
        }
        s.conflict_budget = 1;
        assert_eq!(s.solve(), SatResult::Unknown);
    }
}
