//! 0/1 integer linear programming by branch-and-bound over LP
//! relaxations — the oracle behind ILP-based CGRA mappers (Chin &
//! Anderson's architecture-agnostic formulation, Guo et al.'s
//! synchronizer ILP, …).
//!
//! Depth-first branch-and-bound: each node solves the [`Lp`] relaxation
//! with branching decisions added as equality fixings; nodes are pruned
//! when the relaxation is infeasible or its bound cannot beat the
//! incumbent. Branching picks the most fractional variable and explores
//! the rounded value first.

use crate::lp::{Basis, Cmp, Lp, LpResult};
use std::cell::Cell;
use std::time::{Duration, Instant};

/// Handle to a binary variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpVar(pub usize);

/// Search-effort cells. Interior mutability keeps `solve(&self)`
/// observable without changing its signature; models are built and
/// solved on one thread, so `Cell` is safe here.
#[derive(Debug, Clone, Default)]
struct IlpStats {
    /// Branch-and-bound nodes expanded across solves.
    nodes: Cell<u64>,
    /// LP relaxations solved across solves.
    lp_solves: Cell<u64>,
    /// Nodes cut (infeasible relaxation or bound-pruned) across solves.
    cuts: Cell<u64>,
    /// Estimated simplex pivots avoided by warm-basis reuse, measured
    /// against the cold root relaxation's pivot count.
    warm_pivots_saved: Cell<u64>,
    /// Pivot count of the most recent *cold* root relaxation of this
    /// model — the reference for estimating warm-root savings across a
    /// CEGAR chain of re-solves.
    root_ref_pivots: Cell<Option<u64>>,
}

/// One linear constraint: sparse `(var, coeff)` terms, comparator, rhs.
type Constraint = (Vec<(usize, f64)>, Cmp, f64);

/// A 0/1 ILP.
#[derive(Debug, Clone)]
pub struct IlpModel {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    /// Diagnostic group tag per row, parallel to `constraints`. Rows
    /// inherit the tag current at [`IlpModel::add_constraint`] time
    /// (see [`IlpModel::set_row_tag`]); tag 0 is "untagged".
    row_tags: Vec<u32>,
    /// Tag stamped onto subsequently added rows.
    cur_tag: u32,
    maximize: bool,
    stats: IlpStats,
    /// Cooperative stop signal, polled once per branch-and-bound node.
    /// Inert by default; solves return `Budget` when it fires.
    interrupt: crate::interrupt::Interrupt,
    /// Anytime-incumbent callback, fired with the objective each time
    /// the search improves its best integral solution.
    on_incumbent: IncumbentHook,
}

/// An optional observer for anytime incumbents, shareable across model
/// clones. Wrapped so [`IlpModel`] can keep deriving `Clone` and
/// `Debug` without the closure getting in the way.
#[derive(Clone, Default)]
pub struct IncumbentHook(Option<std::sync::Arc<dyn Fn(f64) + Send + Sync>>);

impl IncumbentHook {
    pub fn new(f: impl Fn(f64) + Send + Sync + 'static) -> Self {
        IncumbentHook(Some(std::sync::Arc::new(f)))
    }

    fn fire(&self, objective: f64) {
        if let Some(f) = &self.0 {
            f(objective);
        }
    }
}

impl std::fmt::Debug for IncumbentHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "IncumbentHook(set)"
        } else {
            "IncumbentHook(none)"
        })
    }
}

/// Solve outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpResult {
    /// Proven optimal assignment.
    Optimal { values: Vec<bool>, objective: f64 },
    /// Proven infeasible.
    Infeasible,
    /// Budget exhausted; best incumbent if any was found.
    Budget {
        values: Option<Vec<bool>>,
        objective: Option<f64>,
    },
}

/// Search budget.
#[derive(Debug, Clone, Copy)]
pub struct IlpConfig {
    pub time_limit: Duration,
    pub node_limit: u64,
    /// Warm-start the root relaxation from the basis handed to
    /// [`IlpModel::solve_warm`]. The LP layer falls back to a cold
    /// solve whenever the basis is unusable, so this only trades time,
    /// never correctness.
    pub warm_lp: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            time_limit: Duration::from_secs(30),
            node_limit: 200_000,
            warm_lp: true,
        }
    }
}

const INT_EPS: f64 = 1e-6;

/// Reusable starting state for a re-solve of the same (or a row-
/// extended) model — the "incremental exact solving" handoff between
/// related ILP queries.
#[derive(Debug, Clone, Default)]
pub struct IlpWarmStart {
    /// Root-relaxation basis from a previous solve of this model chain;
    /// crashed by the LP layer, which falls back to a cold solve
    /// whenever it no longer fits.
    pub basis: Option<Basis>,
    /// A known-feasible 0/1 assignment to open the search with. It is
    /// re-checked against the *current* rows and its objective is
    /// recomputed before use, so an incumbent invalidated by a new
    /// blocking row is discarded, never trusted. A valid incumbent
    /// turns the re-solve into a pure optimality proof: every node
    /// whose relaxation bound cannot beat it is pruned immediately.
    pub incumbent: Option<Vec<bool>>,
}

impl IlpModel {
    pub fn new(maximize: bool) -> Self {
        IlpModel {
            num_vars: 0,
            objective: Vec::new(),
            constraints: Vec::new(),
            row_tags: Vec::new(),
            cur_tag: 0,
            maximize,
            stats: IlpStats::default(),
            interrupt: crate::interrupt::Interrupt::none(),
            on_incumbent: IncumbentHook::default(),
        }
    }

    /// Install a cooperative stop signal checked at every B&B node.
    pub fn set_interrupt(&mut self, interrupt: crate::interrupt::Interrupt) {
        self.interrupt = interrupt;
    }

    /// Install an anytime-incumbent observer, called with the objective
    /// whenever the branch-and-bound search improves its best integral
    /// solution.
    pub fn set_on_incumbent(&mut self, hook: IncumbentHook) {
        self.on_incumbent = hook;
    }

    /// Cumulative search-effort counters: decisions are branch-and-bound
    /// nodes, propagations are LP relaxations solved, conflicts are
    /// infeasible or bound-pruned nodes. ILP has no restarts.
    pub fn stats(&self) -> crate::stats::SolverStats {
        crate::stats::SolverStats {
            decisions: self.stats.nodes.get(),
            propagations: self.stats.lp_solves.get(),
            conflicts: self.stats.cuts.get(),
            warm_pivots_saved: self.stats.warm_pivots_saved.get(),
            ..Default::default()
        }
    }

    /// Add a binary variable with the given objective coefficient.
    pub fn add_var(&mut self, obj: f64) -> IlpVar {
        self.objective.push(obj);
        self.num_vars += 1;
        IlpVar(self.num_vars - 1)
    }

    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Add `sum coeffs·x  cmp  rhs`. The row is stamped with the
    /// current diagnostic tag (see [`IlpModel::set_row_tag`]).
    pub fn add_constraint(&mut self, coeffs: &[(IlpVar, f64)], cmp: Cmp, rhs: f64) {
        self.constraints
            .push((coeffs.iter().map(|&(v, c)| (v.0, c)).collect(), cmp, rhs));
        self.row_tags.push(self.cur_tag);
    }

    /// Set the diagnostic group tag stamped onto every row added from
    /// now on (including rows added through `exactly_one` /
    /// `at_most_one` / `implies`). Tags partition the model into named
    /// constraint classes so an infeasibility can be attributed by
    /// [`IlpModel::probe_without`]; they never affect solving.
    pub fn set_row_tag(&mut self, tag: u32) {
        self.cur_tag = tag;
    }

    /// `sum vars == 1` (the ubiquitous assignment constraint).
    pub fn exactly_one(&mut self, vars: &[IlpVar]) {
        let coeffs: Vec<(IlpVar, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        self.add_constraint(&coeffs, Cmp::Eq, 1.0);
    }

    /// `sum vars <= 1`.
    pub fn at_most_one(&mut self, vars: &[IlpVar]) {
        let coeffs: Vec<(IlpVar, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        self.add_constraint(&coeffs, Cmp::Le, 1.0);
    }

    /// Implication `a -> b`, i.e. `a <= b`.
    pub fn implies(&mut self, a: IlpVar, b: IlpVar) {
        self.add_constraint(&[(a, 1.0), (b, -1.0)], Cmp::Le, 0.0);
    }

    fn relaxation(&self, fixed: &[Option<bool>]) -> Lp {
        let mut lp = Lp::new(self.num_vars, self.maximize);
        lp.set_interrupt(self.interrupt.clone());
        for (v, &c) in self.objective.iter().enumerate() {
            lp.set_objective(v, c);
        }
        for (coeffs, cmp, rhs) in &self.constraints {
            let sparse: Vec<(usize, f64)> = coeffs.clone();
            lp.add_constraint(&sparse, *cmp, *rhs);
        }
        for (v, fix) in fixed.iter().enumerate().take(self.num_vars) {
            match fix {
                Some(true) => lp.add_constraint(&[(v, 1.0)], Cmp::Eq, 1.0),
                Some(false) => lp.add_constraint(&[(v, 1.0)], Cmp::Eq, 0.0),
                None => lp.add_constraint(&[(v, 1.0)], Cmp::Le, 1.0),
            }
        }
        lp
    }

    /// Solve with the default budget.
    pub fn solve(&self) -> IlpResult {
        self.solve_with(IlpConfig::default())
    }

    /// Infeasibility probe: re-solve the model with every row tagged
    /// `drop_tag` removed. On an infeasible model, a probe that comes
    /// back feasible names the dropped constraint class as (part of)
    /// the binding reason — the ILP counterpart of a SAT unsat core
    /// over selector groups. The probe solves a relaxation, so it only
    /// ever *adds* feasibility; it shares the parent's interrupt but
    /// not its warm state or stats.
    pub fn probe_without(&self, drop_tag: u32, cfg: IlpConfig) -> IlpResult {
        let mut probe = IlpModel::new(self.maximize);
        probe.num_vars = self.num_vars;
        probe.objective = self.objective.clone();
        probe.interrupt = self.interrupt.clone();
        for (row, &tag) in self.constraints.iter().zip(&self.row_tags) {
            if tag != drop_tag {
                probe.constraints.push(row.clone());
                probe.row_tags.push(tag);
            }
        }
        probe.solve_with(cfg)
    }

    /// Solve with an explicit budget.
    pub fn solve_with(&self, cfg: IlpConfig) -> IlpResult {
        self.solve_warm(cfg, None).0
    }

    /// `true` when `values` satisfies every row of the model.
    fn satisfies(&self, values: &[bool]) -> bool {
        values.len() == self.num_vars
            && self.constraints.iter().all(|(coeffs, cmp, rhs)| {
                let lhs: f64 = coeffs
                    .iter()
                    .map(|&(v, c)| if values[v] { c } else { 0.0 })
                    .sum();
                match cmp {
                    Cmp::Le => lhs <= rhs + INT_EPS,
                    Cmp::Ge => lhs >= rhs - INT_EPS,
                    Cmp::Eq => (lhs - rhs).abs() <= INT_EPS,
                }
            })
    }

    fn objective_of(&self, values: &[bool]) -> f64 {
        self.objective
            .iter()
            .zip(values)
            .map(|(c, &b)| if b { *c } else { 0.0 })
            .sum()
    }

    /// Solve with an explicit budget, seeded from `warm` (typically the
    /// state returned by a previous solve of this model, at most a few
    /// appended rows ago — the CEGAR / re-map pattern). The basis
    /// warm-starts the *root* relaxation only: the crash restores
    /// feasibility of the violated rows and re-optimises from the old
    /// vertex. Child nodes always solve cold — measured on mapper-shaped
    /// assignment LPs, replaying a parent basis against a changed fixing
    /// row costs more dense pivots than the cold two-phase path spends.
    /// A warm incumbent (validated, see [`IlpWarmStart`]) starts bound
    /// pruning at the previous optimum. Also returns the basis of the
    /// node that produced the best incumbent, to seed the next solve in
    /// the chain. Stale warm state costs a validity check, never
    /// correctness.
    pub fn solve_warm(
        &self,
        cfg: IlpConfig,
        warm: Option<&IlpWarmStart>,
    ) -> (IlpResult, Option<Basis>) {
        let start = Instant::now();
        let mut nodes: u64 = 0;
        let better = |a: f64, b: f64| {
            if self.maximize {
                a > b + INT_EPS
            } else {
                a < b - INT_EPS
            }
        };
        // A handed-in feasible assignment opens the search as the
        // incumbent (objective recomputed, rows re-checked), so bound
        // pruning bites from the first node.
        let mut incumbent: Option<(Vec<bool>, f64)> = warm
            .and_then(|w| w.incumbent.as_deref())
            .filter(|v| self.satisfies(v))
            .map(|v| (v.to_vec(), self.objective_of(v)));

        // DFS stack of partial fixings.
        let root_basis = if cfg.warm_lp {
            warm.and_then(|w| w.basis.clone())
        } else {
            None
        };
        let mut stack: Vec<Vec<Option<bool>>> = vec![vec![None; self.num_vars]];
        let mut at_root = true;
        let mut exhausted = true;
        // Basis of the node that produced the best incumbent so far.
        let mut best_basis: Option<Basis> = None;

        while let Some(fixed) = stack.pop() {
            if nodes >= cfg.node_limit
                || start.elapsed() > cfg.time_limit
                || self.interrupt.should_stop()
            {
                exhausted = false;
                break;
            }
            nodes += 1;
            self.stats.nodes.set(self.stats.nodes.get() + 1);
            let lp = self.relaxation(&fixed);
            self.stats.lp_solves.set(self.stats.lp_solves.get() + 1);
            let warm_ref = if at_root { root_basis.as_ref() } else { None };
            let (result, basis_out) = lp.solve_with_basis(warm_ref);
            if let Some(b) = &basis_out {
                if at_root {
                    match (self.stats.root_ref_pivots.get(), warm_ref.is_some()) {
                        // Only a cold root can serve as the reference.
                        (_, false) => self.stats.root_ref_pivots.set(Some(b.pivots)),
                        (Some(rp), true) => {
                            self.stats.warm_pivots_saved.set(
                                self.stats.warm_pivots_saved.get() + rp.saturating_sub(b.pivots),
                            );
                        }
                        (None, true) => {}
                    }
                }
            }
            at_root = false;
            let (x, bound) = match result {
                LpResult::Optimal { x, objective } => (x, objective),
                LpResult::Infeasible => {
                    self.stats.cuts.set(self.stats.cuts.get() + 1);
                    continue;
                }
                LpResult::Unbounded => {
                    // Binary variables are bounded; an unbounded
                    // relaxation means a modelling bug.
                    panic!("0/1 ILP relaxation cannot be unbounded");
                }
                LpResult::Interrupted => {
                    // The stop signal landed mid-pivot; the node is
                    // unexplored, so the search is not exhausted.
                    exhausted = false;
                    break;
                }
            };
            if let Some((_, inc)) = &incumbent {
                if !better(bound, *inc) {
                    self.stats.cuts.set(self.stats.cuts.get() + 1);
                    continue; // bound cannot beat the incumbent
                }
            }
            // Most fractional variable.
            let frac = (0..self.num_vars)
                .filter(|&v| fixed[v].is_none())
                .map(|v| (v, (x[v] - x[v].round()).abs()))
                .filter(|&(_, f)| f > INT_EPS)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            match frac {
                None => {
                    // Integral solution.
                    let values: Vec<bool> = x.iter().map(|&v| v > 0.5).collect();
                    let obj: f64 = self
                        .objective
                        .iter()
                        .zip(&values)
                        .map(|(c, &b)| if b { *c } else { 0.0 })
                        .sum();
                    let take = incumbent
                        .as_ref()
                        .map(|(_, inc)| better(obj, *inc))
                        .unwrap_or(true);
                    if take {
                        incumbent = Some((values, obj));
                        best_basis = basis_out;
                        self.on_incumbent.fire(obj);
                    }
                }
                Some((v, _)) => {
                    let round_first = x[v] > 0.5;
                    // Push the less-promising branch first so the DFS
                    // explores the rounded value next.
                    let mut far = fixed.clone();
                    far[v] = Some(!round_first);
                    stack.push(far);
                    let mut near = fixed;
                    near[v] = Some(round_first);
                    stack.push(near);
                }
            }
        }

        let result = match (incumbent, exhausted) {
            (Some((values, objective)), true) => IlpResult::Optimal { values, objective },
            (None, true) => IlpResult::Infeasible,
            (inc, false) => {
                let (values, objective) = match inc {
                    Some((v, o)) => (Some(v), Some(o)),
                    None => (None, None),
                };
                IlpResult::Budget { values, objective }
            }
        };
        (result, best_basis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 10 -> a+b (16) vs a+c (14).
        let mut m = IlpModel::new(true);
        let a = m.add_var(10.0);
        let b = m.add_var(6.0);
        let c = m.add_var(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        match m.solve() {
            IlpResult::Optimal { values, objective } => {
                assert_eq!(objective, 16.0);
                assert_eq!(values, vec![true, true, false]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_problem_exact() {
        // 3x3 assignment, min cost.
        let costs = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = IlpModel::new(false);
        let mut v = [[IlpVar(0); 3]; 3];
        for (i, row) in v.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = m.add_var(costs[i][j]);
            }
        }
        for (i, row) in v.iter().enumerate() {
            m.exactly_one(row);
            let col: Vec<IlpVar> = (0..3).map(|r| v[r][i]).collect();
            m.exactly_one(&col);
        }
        match m.solve() {
            IlpResult::Optimal { objective, .. } => {
                // Optimal: (0,1)=2? cols unique: best is 2 + 7 + 3 = 12
                // or 4+3+1=8? rows: r0->c0(4), r1->c1(3)... enumerate:
                // min is r0c1(2) + r1c2(7) + r2c0(3) = 12,
                // r0c0(4)+r1c2(7)+r2c1(1)=12, r0c1+r1c0+r2c2: 2+4+6=12,
                // r0c2+r1c0+r2c1: 8+4+1=13, r0c0+r1c1+r2c2: 4+3+6=13,
                // r0c2+r1c1+r2c0: 8+3+3=14 -> optimum 12.
                assert_eq!(objective, 12.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = IlpModel::new(true);
        let a = m.add_var(1.0);
        let b = m.add_var(1.0);
        m.exactly_one(&[a, b]);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Ge, 2.0); // needs both
        assert_eq!(m.solve(), IlpResult::Infeasible);
    }

    #[test]
    fn implication_constraint() {
        // max b s.t. b -> a, a + b <= 1 : b=1 requires a=1, but then sum=2.
        let mut m = IlpModel::new(true);
        let a = m.add_var(0.0);
        let b = m.add_var(1.0);
        m.implies(b, a);
        m.at_most_one(&[a, b]);
        match m.solve() {
            IlpResult::Optimal { objective, .. } => assert_eq!(objective, 0.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_without_attributes_infeasibility_to_a_row_group() {
        // exactly_one (tag 1) conflicts with a >=2 demand (tag 2);
        // dropping either group restores feasibility, dropping an
        // unused tag does not.
        let mut m = IlpModel::new(true);
        let a = m.add_var(1.0);
        let b = m.add_var(1.0);
        m.set_row_tag(1);
        m.exactly_one(&[a, b]);
        m.set_row_tag(2);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve(), IlpResult::Infeasible);
        assert!(matches!(
            m.probe_without(1, IlpConfig::default()),
            IlpResult::Optimal { .. }
        ));
        assert!(matches!(
            m.probe_without(2, IlpConfig::default()),
            IlpResult::Optimal { .. }
        ));
        assert_eq!(
            m.probe_without(7, IlpConfig::default()),
            IlpResult::Infeasible
        );
        // The probe never mutates the parent model.
        assert_eq!(m.solve(), IlpResult::Infeasible);
    }

    #[test]
    fn budget_exhaustion_reports() {
        // A model that cannot finish in 0 nodes.
        let mut m = IlpModel::new(true);
        let vars: Vec<IlpVar> = (0..10).map(|i| m.add_var(i as f64)).collect();
        m.at_most_one(&vars);
        let r = m.solve_with(IlpConfig {
            time_limit: Duration::from_secs(10),
            node_limit: 0,
            ..Default::default()
        });
        assert!(matches!(r, IlpResult::Budget { .. }));
    }

    #[test]
    fn warm_and_cold_branch_and_bound_agree() {
        // The warm-started search must reach the same optimum as the
        // cold one on a model that actually branches.
        let build = || {
            let mut m = IlpModel::new(true);
            let vars: Vec<IlpVar> = (0..8).map(|i| m.add_var(1.0 + (i as f64) * 0.3)).collect();
            for w in vars.windows(2) {
                m.at_most_one(w);
            }
            let coeffs: Vec<(IlpVar, f64)> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect();
            m.add_constraint(&coeffs, Cmp::Le, 7.0);
            m
        };
        let warm = build();
        let cold = build();
        let rw = warm.solve_with(IlpConfig::default());
        let rc = cold.solve_with(IlpConfig {
            warm_lp: false,
            ..Default::default()
        });
        match (rw, rc) {
            (IlpResult::Optimal { objective: a, .. }, IlpResult::Optimal { objective: b, .. }) => {
                assert!((a - b).abs() < 1e-6, "{a} != {b}")
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(cold.stats().warm_pivots_saved, 0);
    }

    #[test]
    fn solve_warm_chain_matches_cold_after_added_row() {
        // Solve, append a blocking row (the CEGAR pattern), re-solve
        // warm from the returned basis: same optimum as a cold solve.
        let mut m = IlpModel::new(true);
        let a = m.add_var(10.0);
        let b = m.add_var(6.0);
        let c = m.add_var(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        let (r1, basis) = m.solve_warm(IlpConfig::default(), None);
        match r1 {
            IlpResult::Optimal { objective, .. } => assert_eq!(objective, 16.0),
            other => panic!("{other:?}"),
        }
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0); // block {a, b}
        let ws = IlpWarmStart {
            basis,
            incumbent: None,
        };
        let (warm, _) = m.solve_warm(IlpConfig::default(), Some(&ws));
        let cold = m.solve_with(IlpConfig {
            warm_lp: false,
            ..Default::default()
        });
        match (warm, cold) {
            (IlpResult::Optimal { objective: w, .. }, IlpResult::Optimal { objective: c2, .. }) => {
                assert_eq!(w, c2);
                assert_eq!(w, 14.0); // a + c
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn warm_incumbent_is_validated_and_pruned_against() {
        // Re-solving with the previous optimum as a warm incumbent must
        // reproduce it; once a blocking row cuts that incumbent off, it
        // must be discarded and the next optimum found from scratch.
        let mut m = IlpModel::new(true);
        let a = m.add_var(10.0);
        let b = m.add_var(6.0);
        let c = m.add_var(4.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 10.0);
        let (r1, basis) = m.solve_warm(IlpConfig::default(), None);
        let first = match r1 {
            IlpResult::Optimal { values, objective } => {
                assert_eq!(objective, 16.0);
                values
            }
            other => panic!("{other:?}"),
        };
        // Same model, warm incumbent: still 16, values unchanged.
        let ws = IlpWarmStart {
            basis,
            incumbent: Some(first.clone()),
        };
        match m.solve_warm(IlpConfig::default(), Some(&ws)).0 {
            IlpResult::Optimal { values, objective } => {
                assert_eq!(objective, 16.0);
                assert_eq!(values, first);
            }
            other => panic!("{other:?}"),
        }
        // Block {a, b}: the warm incumbent now violates a row and must
        // not leak through as the answer.
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        match m.solve_warm(IlpConfig::default(), Some(&ws)).0 {
            IlpResult::Optimal { objective, .. } => assert_eq!(objective, 14.0), // a + c
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vertex_cover_on_a_path() {
        // Path a-b-c: min vertex cover is {b}.
        let mut m = IlpModel::new(false);
        let a = m.add_var(1.0);
        let b = m.add_var(1.0);
        let c = m.add_var(1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint(&[(b, 1.0), (c, 1.0)], Cmp::Ge, 1.0);
        match m.solve() {
            IlpResult::Optimal { values, objective } => {
                assert_eq!(objective, 1.0);
                assert_eq!(values, vec![false, true, false]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exactly_one_forces_choice() {
        let mut m = IlpModel::new(false);
        let vars: Vec<IlpVar> = (0..5).map(|i| m.add_var((5 - i) as f64)).collect();
        m.exactly_one(&vars);
        match m.solve() {
            IlpResult::Optimal { values, objective } => {
                assert_eq!(objective, 1.0); // cheapest is the last
                assert_eq!(values.iter().filter(|&&b| b).count(), 1);
                assert!(values[4]);
            }
            other => panic!("{other:?}"),
        }
    }
}
