//! Cooperative interruption for the solver engines.
//!
//! Exact-method engines (CDCL SAT, CP, ILP branch-and-bound, SMT) run
//! unbounded searches; callers need to stop them mid-search — not just
//! between restarts or II attempts — when a wall-clock budget expires
//! or a rival mapper has already won a portfolio race. An [`Interrupt`]
//! carries both stop sources:
//!
//! * an optional **deadline** (`Instant`), polled with an amortised
//!   stride so the hot search loop pays one relaxed counter increment
//!   per check and a real `Instant::now()` syscall only every
//!   [`Interrupt::STRIDE`] checks;
//! * an optional shared **cancel flag** (`Arc<AtomicBool>`), checked on
//!   every call — a relaxed atomic load of a cache-shared bool is
//!   cheaper than reading the clock and is the path raced portfolios
//!   rely on for sub-millisecond cancellation latency.
//!
//! The engines check `should_stop()` once per search node / CDCL loop
//! iteration and return their `Unknown` outcome when it fires. Nothing
//! in this module knows about mappers; `cgra-mapper-core`'s
//! `engine::Budget` wraps the same two stop sources and hands an
//! `Interrupt` view of itself down into the solvers.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative stop signal: deadline + shared cancel flag.
///
/// `Clone` produces a view of the same deadline and the same cancel
/// flag but a fresh stride counter, so clones handed to different
/// threads never contend on the counter cache line.
#[derive(Debug, Default)]
pub struct Interrupt {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    /// Amortisation counter for deadline polls (see [`Self::STRIDE`]).
    probe: AtomicU32,
}

impl Clone for Interrupt {
    fn clone(&self) -> Self {
        Interrupt {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            probe: AtomicU32::new(0),
        }
    }
}

impl Interrupt {
    /// Deadline polls happen on every `STRIDE`-th `should_stop` call;
    /// the cancel flag is checked on every call. 64 keeps the worst-case
    /// deadline overshoot far below a millisecond for every engine's
    /// per-node cost while making the common case a single relaxed
    /// counter increment.
    pub const STRIDE: u32 = 64;

    /// An interrupt that never fires (the default for every engine).
    pub fn none() -> Self {
        Interrupt::default()
    }

    /// Stop when `deadline` passes or `cancel` becomes true.
    pub fn new(deadline: Option<Instant>, cancel: Option<Arc<AtomicBool>>) -> Self {
        Interrupt {
            deadline,
            cancel,
            probe: AtomicU32::new(0),
        }
    }

    /// True if this interrupt can ever fire.
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Amortised stop check for hot search loops: cancel flag every
    /// call, clock only every [`Self::STRIDE`]-th call.
    #[inline]
    pub fn should_stop(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if self.probe.fetch_add(1, Ordering::Relaxed) % Self::STRIDE == 0 {
                return Instant::now() > deadline;
            }
        }
        false
    }

    /// Precise stop check (always reads the clock). For cold paths:
    /// once per restart, per CEGAR round, per II attempt.
    pub fn should_stop_now(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        matches!(self.deadline, Some(d) if Instant::now() > d)
    }

    /// True if the cancel flag (not the deadline) is the reason to stop.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_by_default() {
        let i = Interrupt::none();
        assert!(!i.is_active());
        for _ in 0..1000 {
            assert!(!i.should_stop());
        }
        assert!(!i.should_stop_now());
    }

    #[test]
    fn cancel_flag_fires_immediately() {
        let flag = Arc::new(AtomicBool::new(false));
        let i = Interrupt::new(None, Some(flag.clone()));
        assert!(!i.should_stop());
        flag.store(true, Ordering::Relaxed);
        // Every call sees the flag — no stride amortisation on cancel.
        assert!(i.should_stop());
        assert!(i.is_cancelled());
    }

    #[test]
    fn deadline_fires_within_stride() {
        let i = Interrupt::new(Some(Instant::now() - Duration::from_millis(1)), None);
        // The deadline is already past; at most STRIDE calls until the
        // amortised check reads the clock.
        let fired = (0..=Interrupt::STRIDE).any(|_| i.should_stop());
        assert!(fired);
        assert!(i.should_stop_now());
        assert!(!i.is_cancelled());
    }

    #[test]
    fn clone_gets_fresh_probe_but_shared_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = Interrupt::new(None, Some(flag.clone()));
        let b = a.clone();
        flag.store(true, Ordering::Relaxed);
        assert!(a.should_stop());
        assert!(b.should_stop());
    }
}
