//! CNF construction helpers: cardinality encodings used by SAT-based
//! mappers.
//!
//! Two at-most-one encodings are provided because their trade-off is a
//! documented ablation of the SAT mapping experiment (DESIGN.md §4):
//! the **pairwise** encoding adds `n(n−1)/2` binary clauses and no
//! variables; the **sequential** (ladder) encoding adds `n−1` fresh
//! variables and `~3n` clauses, which scales better for large `n`.

use crate::sat::{Lit, SatSolver};

/// Which at-most-one encoding to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoEncoding {
    Pairwise,
    Sequential,
}

/// Add clauses enforcing "at most one of `lits` is true".
pub fn at_most_one(s: &mut SatSolver, lits: &[Lit], enc: AmoEncoding) {
    match enc {
        AmoEncoding::Pairwise => {
            for i in 0..lits.len() {
                for j in (i + 1)..lits.len() {
                    s.add_clause(&[lits[i].negate(), lits[j].negate()]);
                }
            }
        }
        AmoEncoding::Sequential => {
            if lits.len() <= 1 {
                return;
            }
            // Sinz's sequential counter: s_i = "some lit among 0..=i".
            let regs: Vec<Lit> = (0..lits.len() - 1).map(|_| Lit::pos(s.new_var())).collect();
            // l_0 -> s_0
            s.add_clause(&[lits[0].negate(), regs[0]]);
            for i in 1..lits.len() - 1 {
                // l_i -> s_i ; s_{i-1} -> s_i ; l_i ∧ s_{i-1} -> ⊥
                s.add_clause(&[lits[i].negate(), regs[i]]);
                s.add_clause(&[regs[i - 1].negate(), regs[i]]);
                s.add_clause(&[lits[i].negate(), regs[i - 1].negate()]);
            }
            let last = lits.len() - 1;
            s.add_clause(&[lits[last].negate(), regs[last - 1].negate()]);
        }
    }
}

/// Add clauses enforcing "exactly one of `lits` is true".
pub fn exactly_one(s: &mut SatSolver, lits: &[Lit], enc: AmoEncoding) {
    s.add_clause(lits);
    at_most_one(s, lits, enc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatResult, SatVar};

    fn vars(s: &mut SatSolver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    fn count_true(m: &[bool], vs: &[Lit]) -> usize {
        vs.iter()
            .filter(|l| m[l.var().0 as usize] != l.is_neg())
            .count()
    }

    #[test]
    fn exactly_one_models() {
        for enc in [AmoEncoding::Pairwise, AmoEncoding::Sequential] {
            let mut s = SatSolver::new();
            let vs = vars(&mut s, 6);
            exactly_one(&mut s, &vs, enc);
            match s.solve() {
                SatResult::Sat(m) => assert_eq!(count_true(&m, &vs), 1, "{enc:?}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn amo_forbids_two() {
        for enc in [AmoEncoding::Pairwise, AmoEncoding::Sequential] {
            let mut s = SatSolver::new();
            let vs = vars(&mut s, 5);
            at_most_one(&mut s, &vs, enc);
            // Force two of them.
            s.add_clause(&[vs[1]]);
            s.add_clause(&[vs[3]]);
            assert_eq!(s.solve(), SatResult::Unsat, "{enc:?}");
        }
    }

    #[test]
    fn amo_allows_zero_and_one() {
        for enc in [AmoEncoding::Pairwise, AmoEncoding::Sequential] {
            // zero
            let mut s = SatSolver::new();
            let vs = vars(&mut s, 4);
            at_most_one(&mut s, &vs, enc);
            for &v in &vs {
                s.add_clause(&[v.negate()]);
            }
            assert!(matches!(s.solve(), SatResult::Sat(_)), "{enc:?} zero");
            // one
            let mut s = SatSolver::new();
            let vs = vars(&mut s, 4);
            at_most_one(&mut s, &vs, enc);
            s.add_clause(&[vs[2]]);
            match s.solve() {
                SatResult::Sat(m) => assert_eq!(count_true(&m, &vs), 1),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn sequential_adds_fewer_clauses_for_large_n() {
        // Indirect check: variable count grows for sequential only.
        let mut s1 = SatSolver::new();
        let v1 = vars(&mut s1, 30);
        at_most_one(&mut s1, &v1, AmoEncoding::Pairwise);
        assert_eq!(s1.num_vars(), 30);

        let mut s2 = SatSolver::new();
        let v2 = vars(&mut s2, 30);
        at_most_one(&mut s2, &v2, AmoEncoding::Sequential);
        assert_eq!(s2.num_vars(), 30 + 29);
    }

    #[test]
    fn singleton_and_empty_edge_cases() {
        let mut s = SatSolver::new();
        let vs = vars(&mut s, 1);
        at_most_one(&mut s, &vs, AmoEncoding::Sequential);
        at_most_one(&mut s, &[], AmoEncoding::Sequential);
        s.add_clause(&[vs[0]]);
        assert!(matches!(s.solve(), SatResult::Sat(_)));
    }

    /// SatVar import is used by the helper signature checks above.
    #[allow(dead_code)]
    fn _type_check(v: SatVar) -> Lit {
        Lit::pos(v)
    }
}
