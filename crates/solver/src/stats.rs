//! A common search-effort summary for every engine in this crate.
//!
//! The four oracles count different things natively (CDCL conflicts,
//! AC-3 revisions, LP relaxations solved), but mapper-level telemetry
//! wants one vocabulary; `SolverStats` is the translation layer each
//! engine exposes via its `stats()` accessor.

/// Cumulative search effort of one solver instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions (CDCL decides, CP/ILP branch nodes).
    pub decisions: u64,
    /// Propagation work (unit propagations, AC-3 revisions, LP solves).
    pub propagations: u64,
    /// Conflicts / dead ends (CDCL conflicts, CP failed propagations,
    /// infeasible or pruned ILP nodes, SMT theory conflicts).
    pub conflicts: u64,
    /// Restarts (Luby restarts; zero for engines without restarts).
    pub restarts: u64,
    /// Incremental solves answered under assumptions (CDCL
    /// `solve_with_assumptions` calls; zero for other engines).
    pub assumption_solves: u64,
    /// Learnt clauses retained across clause-database reductions
    /// (survivors summed over every GC pass).
    pub learnt_kept: u64,
    /// Learnt clauses garbage-collected by database reductions.
    pub learnt_gcd: u64,
    /// Simplex pivots avoided by warm-basis reuse (estimated against
    /// the cold reference solve of the same model; zero for engines
    /// without an LP core).
    pub warm_pivots_saved: u64,
}

impl SolverStats {
    /// Component-wise difference vs an earlier snapshot of the same
    /// solver (saturating, so a fresh solver baseline is always safe).
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            assumption_solves: self
                .assumption_solves
                .saturating_sub(earlier.assumption_solves),
            learnt_kept: self.learnt_kept.saturating_sub(earlier.learnt_kept),
            learnt_gcd: self.learnt_gcd.saturating_sub(earlier.learnt_gcd),
            warm_pivots_saved: self
                .warm_pivots_saved
                .saturating_sub(earlier.warm_pivots_saved),
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions + other.decisions,
            propagations: self.propagations + other.propagations,
            conflicts: self.conflicts + other.conflicts,
            restarts: self.restarts + other.restarts,
            assumption_solves: self.assumption_solves + other.assumption_solves,
            learnt_kept: self.learnt_kept + other.learnt_kept,
            learnt_gcd: self.learnt_gcd + other.learnt_gcd,
            warm_pivots_saved: self.warm_pivots_saved + other.warm_pivots_saved,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_merged() {
        let a = SolverStats {
            decisions: 10,
            propagations: 100,
            conflicts: 5,
            restarts: 1,
            ..Default::default()
        };
        let b = SolverStats {
            decisions: 4,
            propagations: 40,
            conflicts: 2,
            restarts: 0,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.decisions, 6);
        assert_eq!(d.propagations, 60);
        assert_eq!(b.since(&a), SolverStats::default());
        let m = a.merged(&b);
        assert_eq!(m.decisions, 14);
        assert_eq!(m.restarts, 1);
    }

    #[test]
    fn incremental_fields_flow_through() {
        let a = SolverStats {
            assumption_solves: 3,
            learnt_kept: 20,
            learnt_gcd: 12,
            warm_pivots_saved: 7,
            ..Default::default()
        };
        let b = SolverStats {
            assumption_solves: 1,
            learnt_kept: 5,
            learnt_gcd: 4,
            warm_pivots_saved: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.assumption_solves, 2);
        assert_eq!(d.learnt_kept, 15);
        assert_eq!(d.learnt_gcd, 8);
        assert_eq!(d.warm_pivots_saved, 5);
        let m = a.merged(&b);
        assert_eq!(m.assumption_solves, 4);
        assert_eq!(m.warm_pivots_saved, 9);
    }
}
