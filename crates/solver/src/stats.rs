//! A common search-effort summary for every engine in this crate.
//!
//! The four oracles count different things natively (CDCL conflicts,
//! AC-3 revisions, LP relaxations solved), but mapper-level telemetry
//! wants one vocabulary; `SolverStats` is the translation layer each
//! engine exposes via its `stats()` accessor.

/// Cumulative search effort of one solver instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions (CDCL decides, CP/ILP branch nodes).
    pub decisions: u64,
    /// Propagation work (unit propagations, AC-3 revisions, LP solves).
    pub propagations: u64,
    /// Conflicts / dead ends (CDCL conflicts, CP failed propagations,
    /// infeasible or pruned ILP nodes, SMT theory conflicts).
    pub conflicts: u64,
    /// Restarts (Luby restarts; zero for engines without restarts).
    pub restarts: u64,
}

impl SolverStats {
    /// Component-wise difference vs an earlier snapshot of the same
    /// solver (saturating, so a fresh solver baseline is always safe).
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions + other.decisions,
            propagations: self.propagations + other.propagations,
            conflicts: self.conflicts + other.conflicts,
            restarts: self.restarts + other.restarts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_merged() {
        let a = SolverStats {
            decisions: 10,
            propagations: 100,
            conflicts: 5,
            restarts: 1,
        };
        let b = SolverStats {
            decisions: 4,
            propagations: 40,
            conflicts: 2,
            restarts: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.decisions, 6);
        assert_eq!(d.propagations, 60);
        assert_eq!(b.since(&a), SolverStats::default());
        let m = a.merged(&b);
        assert_eq!(m.decisions, 14);
        assert_eq!(m.restarts, 1);
    }
}
