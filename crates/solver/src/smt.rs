//! SMT-lite: lazy CDCL(T) over integer difference logic.
//!
//! Atoms are difference constraints `x_i − x_j ≤ c` over integer
//! variables. The propositional skeleton is solved by the CDCL
//! [`SatSolver`]; each full model is checked by a Bellman-Ford negative
//! cycle detector over the asserted constraints; theory conflicts are
//! returned to the SAT solver as blocking clauses (the classic lazy
//! "offline" SMT loop of early CGRA SMT mappers à la Donovick et al.).
//!
//! Negated atoms are interpreted over integers:
//! `¬(x − y ≤ c)  ⇔  y − x ≤ −c − 1`.

use crate::sat::{Lit, SatResult, SatSolver, SatVar};

/// A difference-logic atom `x − y ≤ c`, tied to a SAT variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffAtom {
    pub x: usize,
    pub y: usize,
    pub c: i64,
    pub lit: SatVar,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmtResult {
    /// Satisfiable: boolean model + integer values for the theory vars.
    Sat {
        model: Vec<bool>,
        values: Vec<i64>,
    },
    Unsat,
    Unknown,
}

/// Lazy difference-logic SMT solver.
pub struct SmtSolver {
    pub sat: SatSolver,
    num_int_vars: usize,
    atoms: Vec<DiffAtom>,
    /// Budget on theory-refinement rounds.
    pub max_rounds: usize,
    /// Statistics: negative cycles found (theory conflicts).
    pub theory_conflicts: u64,
}

impl SmtSolver {
    pub fn new(num_int_vars: usize) -> Self {
        SmtSolver {
            sat: SatSolver::new(),
            num_int_vars,
            atoms: Vec::new(),
            max_rounds: 10_000,
            theory_conflicts: 0,
        }
    }

    /// Cumulative search-effort counters: the embedded CDCL solver's
    /// stats, with theory conflicts added to the conflict count.
    pub fn stats(&self) -> crate::stats::SolverStats {
        let mut s = self.sat.stats();
        s.conflicts += self.theory_conflicts;
        s
    }

    /// Create the atom `x − y ≤ c` and return the literal asserting it.
    pub fn diff_le(&mut self, x: usize, y: usize, c: i64) -> Lit {
        assert!(x < self.num_int_vars && y < self.num_int_vars);
        let v = self.sat.new_var();
        self.atoms.push(DiffAtom { x, y, c, lit: v });
        Lit::pos(v)
    }

    /// Add a propositional clause over atom literals (and any extra SAT
    /// variables created through `self.sat`).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.sat.add_clause(lits);
    }

    /// Solve the CDCL(T) loop.
    ///
    /// The embedded CDCL solver polls `self.sat.interrupt` inside its
    /// search loop; the refinement loop re-checks it here so a stop
    /// signal also lands between theory rounds.
    pub fn solve(&mut self) -> SmtResult {
        for _ in 0..self.max_rounds {
            if self.sat.interrupt.should_stop_now() {
                return SmtResult::Unknown;
            }
            match self.sat.solve() {
                SatResult::Unsat => return SmtResult::Unsat,
                SatResult::Unknown => return SmtResult::Unknown,
                SatResult::Sat(model) => {
                    // Collect asserted constraints (both polarities).
                    // Edge x → y with weight w encodes  y − x ≤ w? We use
                    // the standard graph: constraint  x − y ≤ c  becomes
                    // edge  y → x  with weight c; a negative cycle means
                    // the conjunction is unsatisfiable.
                    let mut edges: Vec<(usize, usize, i64, Lit)> = Vec::new();
                    for a in &self.atoms {
                        if model[a.lit.0 as usize] {
                            edges.push((a.y, a.x, a.c, Lit::pos(a.lit)));
                        } else {
                            // ¬(x − y ≤ c) ⇒ y − x ≤ −c−1.
                            edges.push((a.x, a.y, -a.c - 1, Lit::neg(a.lit)));
                        }
                    }
                    match negative_cycle(self.num_int_vars, &edges) {
                        None => {
                            let values = shortest_potentials(self.num_int_vars, &edges);
                            return SmtResult::Sat { model, values };
                        }
                        Some(cycle_lits) => {
                            self.theory_conflicts += 1;
                            // Block this theory-inconsistent combination.
                            let clause: Vec<Lit> = cycle_lits.iter().map(|l| l.negate()).collect();
                            self.sat.add_clause(&clause);
                            if clause.is_empty() {
                                return SmtResult::Unsat;
                            }
                        }
                    }
                }
            }
        }
        SmtResult::Unknown
    }
}

/// Bellman-Ford negative-cycle detection. Returns the literals of the
/// constraints on a negative cycle, or `None` if consistent.
fn negative_cycle(n: usize, edges: &[(usize, usize, i64, Lit)]) -> Option<Vec<Lit>> {
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut changed_node = None;
    for round in 0..n {
        let mut changed = false;
        for (idx, &(u, v, w, _)) in edges.iter().enumerate() {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
                pred[v] = Some(idx);
                changed = true;
                if round == n - 1 {
                    changed_node = Some(v);
                }
            }
        }
        if !changed {
            return None;
        }
    }
    let start = changed_node?;
    // Walk predecessors n times to land on the cycle, then collect it.
    let mut node = start;
    for _ in 0..n {
        node = edges[pred[node]?].0;
    }
    let mut lits = Vec::new();
    let cycle_entry = node;
    loop {
        let e = pred[node]?;
        lits.push(edges[e].3);
        node = edges[e].0;
        if node == cycle_entry {
            break;
        }
    }
    Some(lits)
}

/// Integer potentials satisfying all edges (shortest distances from a
/// virtual source). Assumes no negative cycle.
fn shortest_potentials(n: usize, edges: &[(usize, usize, i64, Lit)]) -> Vec<i64> {
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for &(u, v, w, _) in edges {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Normalise to non-negative values for readability.
    let min = dist.iter().copied().min().unwrap_or(0);
    for d in &mut dist {
        *d -= min;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_chain_sat() {
        // x0 - x1 <= -1, x1 - x2 <= -1 (i.e. x0 < x1 < x2).
        let mut s = SmtSolver::new(3);
        let a = s.diff_le(0, 1, -1);
        let b = s.diff_le(1, 2, -1);
        s.add_clause(&[a]);
        s.add_clause(&[b]);
        match s.solve() {
            SmtResult::Sat { values, .. } => {
                assert!(values[0] < values[1]);
                assert!(values[1] < values[2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cyclic_strict_ordering_unsat() {
        // x0 < x1 < x2 < x0 is unsatisfiable.
        let mut s = SmtSolver::new(3);
        let a = s.diff_le(0, 1, -1);
        let b = s.diff_le(1, 2, -1);
        let c = s.diff_le(2, 0, -1);
        s.add_clause(&[a]);
        s.add_clause(&[b]);
        s.add_clause(&[c]);
        assert_eq!(s.solve(), SmtResult::Unsat);
    }

    #[test]
    fn theory_guides_boolean_choice() {
        // Either x0 < x1 or x1 < x0 — both are theory-consistent alone;
        // but adding x0 = x1 (as two ≤ 0 constraints) kills both stricts.
        let mut s = SmtSolver::new(2);
        let lt = s.diff_le(0, 1, -1); // x0 - x1 <= -1
        let gt = s.diff_le(1, 0, -1); // x1 - x0 <= -1
        let le = s.diff_le(0, 1, 0);
        let ge = s.diff_le(1, 0, 0);
        s.add_clause(&[le]);
        s.add_clause(&[ge]);
        s.add_clause(&[lt, gt]); // require one strict ordering
        assert_eq!(s.solve(), SmtResult::Unsat);
    }

    #[test]
    fn negated_atoms_have_integer_semantics() {
        // ¬(x0 - x1 <= 0) ⇒ x0 > x1; combined with x0 - x1 <= 1 is SAT
        // with x0 = x1 + 1 exactly.
        let mut s = SmtSolver::new(2);
        let le0 = s.diff_le(0, 1, 0);
        let le1 = s.diff_le(0, 1, 1);
        s.add_clause(&[le0.negate()]);
        s.add_clause(&[le1]);
        match s.solve() {
            SmtResult::Sat { values, .. } => {
                assert_eq!(values[0] - values[1], 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjunction_picks_consistent_arm() {
        // (x0 < x1 or x1 < x0), plus x1 < x0 blocked propositionally.
        let mut s = SmtSolver::new(2);
        let a = s.diff_le(0, 1, -1);
        let b = s.diff_le(1, 0, -1);
        s.add_clause(&[a, b]);
        s.add_clause(&[b.negate()]);
        match s.solve() {
            SmtResult::Sat { values, model } => {
                assert!(values[0] < values[1]);
                let a_var = a.var().0 as usize;
                assert!(model[a_var]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn window_constraints_schedulelike() {
        // A tiny scheduling shape: t1 >= t0 + 2, t2 >= t1 + 2, t2 <= t0 + 3
        // is UNSAT; relaxing to t2 <= t0 + 4 is SAT.
        for (bound, expect_sat) in [(3, false), (4, true)] {
            let mut s = SmtSolver::new(3);
            let a = s.diff_le(0, 1, -2); // t0 - t1 <= -2
            let b = s.diff_le(1, 2, -2);
            let c = s.diff_le(2, 0, bound);
            s.add_clause(&[a]);
            s.add_clause(&[b]);
            s.add_clause(&[c]);
            let r = s.solve();
            if expect_sat {
                assert!(matches!(r, SmtResult::Sat { .. }), "bound {bound}");
            } else {
                assert_eq!(r, SmtResult::Unsat, "bound {bound}");
            }
        }
    }
}
