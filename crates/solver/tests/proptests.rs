//! Property-based tests pitting every solver engine against a
//! brute-force oracle on randomly generated small instances.

use cgra_solver::cnf::{at_most_one, AmoEncoding};
use cgra_solver::{
    Cmp, CpModel, CpSolution, IlpModel, IlpResult, Lit, Lp, LpResult, SatResult, SatSolver,
};
use proptest::prelude::*;

/// A random 3-ish-CNF over `nvars` variables as (var, polarity) lists.
fn arb_cnf(nvars: usize, nclauses: usize) -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0..nvars, any::<bool>()), 1..=3),
        1..=nclauses,
    )
}

fn brute_force_sat(nvars: usize, cnf: &[Vec<(usize, bool)>]) -> bool {
    (0..(1u32 << nvars)).any(|bits| {
        cnf.iter()
            .all(|clause| clause.iter().any(|&(v, pos)| (bits >> v & 1 == 1) == pos))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn cdcl_agrees_with_truth_table(cnf in arb_cnf(8, 24)) {
        let mut s = SatSolver::new();
        let vars: Vec<_> = (0..8).map(|_| s.new_var()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { Lit::pos(vars[v]) } else { Lit::neg(vars[v]) })
                .collect();
            s.add_clause(&lits);
        }
        let want = brute_force_sat(8, &cnf);
        match s.solve() {
            SatResult::Sat(model) => {
                prop_assert!(want, "solver said SAT, oracle says UNSAT");
                // And the model must actually satisfy the formula.
                for clause in &cnf {
                    prop_assert!(clause.iter().any(|&(v, pos)| model[v] == pos));
                }
            }
            SatResult::Unsat => prop_assert!(!want, "solver said UNSAT, oracle says SAT"),
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn amo_encodings_equisatisfiable(force in prop::collection::vec(any::<bool>(), 6)) {
        // Force an arbitrary subset of 6 vars true under both AMO
        // encodings; both must agree with the count-based oracle.
        let expected_sat = force.iter().filter(|&&b| b).count() <= 1;
        for enc in [AmoEncoding::Pairwise, AmoEncoding::Sequential] {
            let mut s = SatSolver::new();
            let vars: Vec<Lit> = (0..6).map(|_| Lit::pos(s.new_var())).collect();
            at_most_one(&mut s, &vars, enc);
            for (i, &f) in force.iter().enumerate() {
                s.add_clause(&[if f { vars[i] } else { vars[i].negate() }]);
            }
            let got = matches!(s.solve(), SatResult::Sat(_));
            prop_assert_eq!(got, expected_sat, "{:?}", enc);
        }
    }

    #[test]
    fn cp_binary_agrees_with_exhaustive(
        cap_x in 2u32..6, cap_y in 2u32..6, modulus in 2u32..5, residue in 0u32..5
    ) {
        let residue = residue % modulus;
        let pred = move |a: u32, b: u32| (a + 2 * b) % modulus == residue;
        let mut m = CpModel::new();
        let x = m.add_var(cap_x);
        let y = m.add_var(cap_y);
        m.binary_table(x, y, pred);
        let oracle = (0..cap_x).any(|a| (0..cap_y).any(|b| pred(a, b)));
        match m.solve() {
            CpSolution::Sat(sol) => {
                prop_assert!(oracle);
                prop_assert!(pred(sol[0], sol[1]));
            }
            CpSolution::Unsat => prop_assert!(!oracle),
            CpSolution::Unknown => prop_assert!(false, "tiny instance must finish"),
        }
    }

    #[test]
    fn cp_all_different_matches_pigeonhole(vars in 1usize..7, cap in 1u32..7) {
        let mut m = CpModel::new();
        let vs: Vec<_> = (0..vars).map(|_| m.add_var(cap)).collect();
        m.all_different(&vs);
        let feasible = vars <= cap as usize;
        match m.solve() {
            CpSolution::Sat(sol) => {
                prop_assert!(feasible);
                let mut sorted = sol.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), vars);
            }
            CpSolution::Unsat => prop_assert!(!feasible),
            CpSolution::Unknown => prop_assert!(false),
        }
    }

    #[test]
    fn assumption_solves_agree_with_fresh_solves(
        cnf in arb_cnf(7, 20),
        assumps in prop::collection::vec((0usize..7, any::<bool>()), 0..=3)
    ) {
        // One incremental solver queried under assumptions must agree,
        // query by query, with a fresh solver given the assumptions as
        // unit clauses — including after earlier queries have seeded
        // the incremental solver's learnt-clause database.
        let mut inc = SatSolver::new();
        let inc_vars: Vec<_> = (0..7).map(|_| inc.new_var()).collect();
        for clause in &cnf {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { Lit::pos(inc_vars[v]) } else { Lit::neg(inc_vars[v]) })
                .collect();
            inc.add_clause(&lits);
        }
        // Warm the learnt DB with an unassumed solve first.
        let unconstrained = inc.solve();

        let lits: Vec<Lit> = assumps
            .iter()
            .map(|&(v, pos)| if pos { Lit::pos(inc_vars[v]) } else { Lit::neg(inc_vars[v]) })
            .collect();
        let incremental = inc.solve_with_assumptions(&lits);

        let mut fresh = SatSolver::new();
        let f_vars: Vec<_> = (0..7).map(|_| fresh.new_var()).collect();
        for clause in &cnf {
            let cl: Vec<Lit> = clause
                .iter()
                .map(|&(v, pos)| if pos { Lit::pos(f_vars[v]) } else { Lit::neg(f_vars[v]) })
                .collect();
            fresh.add_clause(&cl);
        }
        for &(v, pos) in &assumps {
            fresh.add_clause(&[if pos { Lit::pos(f_vars[v]) } else { Lit::neg(f_vars[v]) }]);
        }
        let from_scratch = fresh.solve();

        match (&incremental, &from_scratch) {
            (SatResult::Sat(model), SatResult::Sat(_)) => {
                for clause in &cnf {
                    prop_assert!(clause.iter().any(|&(v, pos)| model[v] == pos));
                }
                for &(v, pos) in &assumps {
                    prop_assert_eq!(model[v], pos, "assumption not honoured");
                }
            }
            (SatResult::Unsat, SatResult::Unsat) => {}
            other => prop_assert!(false, "incremental vs fresh: {other:?}"),
        }
        // The incremental solver must still answer the unconstrained
        // query identically after the assumption solve.
        let again = inc.solve();
        prop_assert_eq!(
            matches!(again, SatResult::Sat(_)),
            matches!(unconstrained, SatResult::Sat(_))
        );
    }

    #[test]
    fn warm_basis_lp_matches_cold_objective(
        profits in prop::collection::vec(1i64..12, 5),
        caps in prop::collection::vec(1i64..8, 4),
        rows in prop::collection::vec(prop::collection::vec(0i64..4, 5), 4)
    ) {
        // Random feasible packing LPs (x = 0 is always feasible):
        // max p·x s.t. A x <= caps, x <= 1. The cold solve's basis is
        // replayed as a warm start for the same LP and for a perturbed
        // sibling; objectives must match each LP's own cold optimum.
        let build = |tight: bool| {
            let mut lp = Lp::new(5, true);
            for (v, &p) in profits.iter().enumerate() {
                lp.set_objective(v, p as f64);
            }
            for (r, row) in rows.iter().enumerate() {
                let coeffs: Vec<(usize, f64)> =
                    row.iter().enumerate().map(|(v, &c)| (v, c as f64)).collect();
                let cap = if tight { caps[r] as f64 * 0.5 } else { caps[r] as f64 };
                lp.add_constraint(&coeffs, Cmp::Le, cap);
            }
            for v in 0..5 {
                lp.add_constraint(&[(v, 1.0)], Cmp::Le, 1.0);
            }
            lp
        };
        let base = build(false);
        let (cold, basis) = base.solve_with_basis(None);
        let basis = match (&cold, basis) {
            (LpResult::Optimal { .. }, Some(b)) => b,
            other => { prop_assert!(false, "packing LP must be optimal: {other:?}"); unreachable!() }
        };
        let warm = base.solve_from(&basis);
        match (&cold, &warm) {
            (LpResult::Optimal { objective: a, .. }, LpResult::Optimal { objective: b, .. }) =>
                prop_assert!((a - b).abs() < 1e-6, "warm {b} vs cold {a}"),
            other => prop_assert!(false, "{other:?}"),
        }
        // Perturbed sibling (tighter rhs): stale basis, same optimum as
        // the sibling's cold solve.
        let sibling = build(true);
        let sib_cold = sibling.solve();
        let sib_warm = sibling.solve_from(&basis);
        match (&sib_cold, &sib_warm) {
            (LpResult::Optimal { objective: a, .. }, LpResult::Optimal { objective: b, .. }) =>
                prop_assert!((a - b).abs() < 1e-6, "sibling warm {b} vs cold {a}"),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    #[test]
    fn ilp_knapsack_matches_brute_force(
        profits in prop::collection::vec(1i64..20, 6),
        weights in prop::collection::vec(1i64..10, 6),
        budget in 5i64..30
    ) {
        let mut m = IlpModel::new(true);
        let vars: Vec<_> = profits.iter().map(|&p| m.add_var(p as f64)).collect();
        let row: Vec<_> = vars
            .iter()
            .zip(&weights)
            .map(|(&v, &w)| (v, w as f64))
            .collect();
        m.add_constraint(&row, Cmp::Le, budget as f64);
        // Brute force.
        let mut best = 0i64;
        for bits in 0..(1u32 << 6) {
            let w: i64 = (0..6).filter(|&i| bits >> i & 1 == 1).map(|i| weights[i]).sum();
            if w <= budget {
                let p: i64 = (0..6).filter(|&i| bits >> i & 1 == 1).map(|i| profits[i]).sum();
                best = best.max(p);
            }
        }
        match m.solve() {
            IlpResult::Optimal { objective, values } => {
                prop_assert!((objective - best as f64).abs() < 1e-6,
                             "ILP {objective} vs brute {best}");
                // Chosen set must respect the budget.
                let w: i64 = values
                    .iter()
                    .zip(&weights)
                    .filter(|(&b, _)| b)
                    .map(|(_, &w)| w)
                    .sum();
                prop_assert!(w <= budget);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }
}
