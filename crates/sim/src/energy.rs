//! Energy model: per-event energies plus static leakage.
//!
//! Calibrated to the *relative* numbers the CGRA literature reports
//! (e.g. Bouwens et al.'s ADRES breakdowns, SNAFU's energy-minimal
//! design point): a multiply costs a few ALU-ops, a network hop and a
//! register write are each a fraction of an ALU op, memory accesses
//! dominate, and configuration fetches amortise over II. Absolute
//! units are picojoule-ish but only ratios are meaningful — exactly
//! like the survey's Figure 1.

use cgra_arch::Fabric;
use cgra_ir::{Dfg, OpKind};
use cgra_mapper_core::{Mapping, Metrics};
use serde::{Deserialize, Serialize};

/// Per-event energies (arbitrary units ≈ pJ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    pub e_alu: f64,
    pub e_mul: f64,
    pub e_mem: f64,
    pub e_hop: f64,
    pub e_reg: f64,
    /// Per-PE per-context fetch (decoder + config register).
    pub e_ctx: f64,
    /// Static leakage per PE per cycle.
    pub e_static: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            e_alu: 1.0,
            e_mul: 3.0,
            e_mem: 6.0,
            e_hop: 0.3,
            e_reg: 0.2,
            e_ctx: 0.4,
            e_static: 0.05,
        }
    }
}

impl EnergyModel {
    /// Energy of one operation issue.
    pub fn op_energy(&self, op: OpKind) -> f64 {
        if op.needs_multiplier() {
            self.e_mul
        } else if op.is_memory() {
            self.e_mem
        } else {
            self.e_alu
        }
    }

    /// Energy of executing `iters` iterations of a mapped kernel.
    pub fn run_energy(&self, mapping: &Mapping, dfg: &Dfg, fabric: &Fabric, iters: u64) -> f64 {
        let metrics = Metrics::of(mapping, dfg, fabric);
        let ops: f64 = dfg.nodes().map(|(_, n)| self.op_energy(n.op)).sum();
        let dynamic_per_iter = ops
            + metrics.route_hops as f64 * self.e_hop
            + metrics.register_cycles as f64 * self.e_reg
            + fabric.num_pes() as f64 * self.e_ctx; // one context fetch per PE per II window
        let cycles = metrics.schedule_len as u64 + (iters.saturating_sub(1)) * mapping.ii as u64;
        let leakage = fabric.num_pes() as f64 * self.e_static * cycles as f64;
        dynamic_per_iter * iters as f64 + leakage
    }

    /// Energy per useful operation (ops/J inverse) — the Fig. 1 y-axis.
    pub fn energy_per_op(&self, mapping: &Mapping, dfg: &Dfg, fabric: &Fabric, iters: u64) -> f64 {
        let total = self.run_energy(mapping, dfg, fabric, iters);
        total / (dfg.node_count() as f64 * iters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;
    use cgra_mapper_core::prelude::*;

    #[test]
    fn energy_scales_with_iterations() {
        let dfg = kernels::dot_product();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let em = EnergyModel::default();
        let e1 = em.run_energy(&m, &dfg, &f, 100);
        let e2 = em.run_energy(&m, &dfg, &f, 200);
        assert!(e2 > 1.8 * e1 && e2 < 2.2 * e1, "{e1} vs {e2}");
    }

    #[test]
    fn memory_kernels_cost_more_per_op() {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let em = EnergyModel::default();
        let map = |dfg: &cgra_ir::Dfg| {
            ModuloList::default()
                .map(dfg, &f, &MapConfig::fast())
                .unwrap()
        };
        let dot = kernels::dot_product();
        let mat = kernels::matmul_body();
        let e_dot = em.energy_per_op(&map(&dot), &dot, &f, 64);
        let e_mat = em.energy_per_op(&map(&mat), &mat, &f, 64);
        assert!(e_mat > e_dot, "memory-heavy {e_mat} !> {e_dot}");
    }

    #[test]
    fn op_energy_classes_ordered() {
        let em = EnergyModel::default();
        assert!(em.op_energy(OpKind::Load) > em.op_energy(OpKind::Mul));
        assert!(em.op_energy(OpKind::Mul) > em.op_energy(OpKind::Add));
    }
}
