//! Configuration-stream generation: what the survey's Fig. 2c calls
//! the configuration register contents, one context per II slot.
//!
//! A context holds, per PE: the opcode to execute (if any), the
//! constant operand (if the op consumes one), and the operand routing
//! selectors. The binary packing (via `bytes`) stands in for the
//! "contract between hardware and software" the survey discusses: the
//! compiler must produce exactly the bits the fabric decodes.

use bytes::{BufMut, BytesMut};
use cgra_arch::{Fabric, PeId};
use cgra_ir::{Dfg, NodeId, OpKind};
use cgra_mapper_core::Mapping;
use serde::{Deserialize, Serialize};

/// One PE's configuration for one II slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Context {
    /// The node issuing here, if any.
    pub node: Option<u32>,
    /// Mnemonic (decoded view).
    pub op: Option<String>,
    /// Constant operand for `Const` ops.
    pub imm: Option<i64>,
    /// For each operand port: the PE the value is read from (itself or
    /// a neighbour index).
    pub operand_from: Vec<u16>,
}

/// The full configuration stream: `contexts[slot][pe]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigStream {
    pub ii: u32,
    pub contexts: Vec<Vec<Context>>,
}

impl ConfigStream {
    /// Generate the per-slot configuration from a valid mapping.
    pub fn generate(mapping: &Mapping, dfg: &Dfg, fabric: &Fabric) -> ConfigStream {
        let mut contexts = vec![
            vec![
                Context {
                    node: None,
                    op: None,
                    imm: None,
                    operand_from: Vec::new(),
                };
                fabric.num_pes()
            ];
            mapping.ii as usize
        ];
        for (id, node) in dfg.nodes() {
            let p = mapping.placement(id);
            let slot = (p.time % mapping.ii) as usize;
            let ctx = &mut contexts[slot][p.pe.index()];
            ctx.node = Some(id.0);
            ctx.op = Some(node.op.mnemonic().to_string());
            if let OpKind::Const(v) = node.op {
                ctx.imm = Some(v);
            }
            // Operand sources: the position of the value one cycle
            // before issue (same PE or a neighbour's register file).
            let arity = node.op.ports().count() as u8;
            let mut from = Vec::with_capacity(arity as usize);
            for port in 0..arity {
                let (eid, _) = dfg.operand(id, port).expect("validated");
                let r = mapping.route(eid);
                // The input mux reads the register the value sat in one
                // cycle before issue: the penultimate route step (the
                // last step is the consumer PE itself).
                let src = if r.steps.len() >= 2 {
                    r.steps[r.steps.len() - 2]
                } else {
                    r.steps.last().copied().unwrap_or(p.pe)
                };
                from.push(src.0);
            }
            ctx.operand_from = from;
        }
        ConfigStream {
            ii: mapping.ii,
            contexts,
        }
    }

    /// Pack into a binary bitstream: a 4-byte header (II, PEs), then
    /// per context-word: opcode byte, flags, imm (i64 LE when present),
    /// operand selectors.
    pub fn pack(&self) -> bytes::Bytes {
        let mut buf = BytesMut::new();
        buf.put_u16_le(self.ii as u16);
        buf.put_u16_le(self.contexts.first().map(|c| c.len()).unwrap_or(0) as u16);
        for slot in &self.contexts {
            for ctx in slot {
                match &ctx.node {
                    None => buf.put_u8(0xFF), // NOP
                    Some(n) => {
                        buf.put_u8((n % 0xFE) as u8);
                        buf.put_u8(ctx.operand_from.len() as u8);
                        let has_imm = ctx.imm.is_some();
                        buf.put_u8(has_imm as u8);
                        if let Some(v) = ctx.imm {
                            buf.put_i64_le(v);
                        }
                        for &s in &ctx.operand_from {
                            buf.put_u16_le(s);
                        }
                    }
                }
            }
        }
        buf.freeze()
    }

    /// Number of NOP slots (idle issue slots) — the utilisation view.
    pub fn nop_slots(&self) -> usize {
        self.contexts
            .iter()
            .flat_map(|s| s.iter())
            .filter(|c| c.node.is_none())
            .count()
    }

    /// Render the stream as the survey's Fig. 2c table.
    pub fn render(&self, fabric: &Fabric) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "configuration stream: II={} ({} contexts)",
            self.ii, self.ii
        );
        for (slot, ctxs) in self.contexts.iter().enumerate() {
            let _ = writeln!(s, " context {slot}:");
            for r in 0..fabric.rows {
                let mut line = String::from("   ");
                for c in 0..fabric.cols {
                    let pe = fabric.pe_at(r, c);
                    let ctx = &ctxs[pe.index()];
                    let cell = match (&ctx.op, ctx.imm) {
                        (Some(op), Some(imm)) => format!("{op}#{imm}"),
                        (Some(op), None) => op.clone(),
                        _ => "nop".into(),
                    };
                    line.push_str(&format!("[{cell:^9}]"));
                }
                let _ = writeln!(s, "{line}");
            }
        }
        s
    }
}

/// Convenience: the configuration of one PE across slots.
pub fn pe_schedule(stream: &ConfigStream, pe: PeId) -> Vec<Option<u32>> {
    stream
        .contexts
        .iter()
        .map(|slot| slot[pe.index()].node)
        .collect()
}

/// Which node issues at `(pe, slot)`, if any.
pub fn node_at(stream: &ConfigStream, pe: PeId, slot: u32) -> Option<NodeId> {
    stream.contexts[slot as usize][pe.index()].node.map(NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::{Topology, TopologyCache};
    use cgra_ir::kernels;
    use cgra_mapper_core::prelude::*;

    fn mapped() -> (Dfg, Fabric, Mapping) {
        let dfg = kernels::dot_product();
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        (dfg, f, m)
    }

    #[test]
    fn every_op_has_a_context() {
        let (dfg, f, m) = mapped();
        let cs = ConfigStream::generate(&m, &dfg, &f);
        let configured: usize = cs
            .contexts
            .iter()
            .flat_map(|s| s.iter())
            .filter(|c| c.node.is_some())
            .count();
        assert_eq!(configured, dfg.node_count());
        assert_eq!(
            cs.nop_slots(),
            f.num_pes() * m.ii as usize - dfg.node_count()
        );
    }

    #[test]
    fn operand_sources_are_local_or_neighbours() {
        let (dfg, f, m) = mapped();
        let cs = ConfigStream::generate(&m, &dfg, &f);
        let topo = TopologyCache::build(&f);
        for (slot, ctxs) in cs.contexts.iter().enumerate() {
            for (pe_idx, ctx) in ctxs.iter().enumerate() {
                let pe = PeId(pe_idx as u16);
                let _ = slot;
                for &src in &ctx.operand_from {
                    let src = PeId(src);
                    assert!(
                        src == pe || topo.adjacent(pe, src),
                        "operand from non-adjacent {src} at {pe}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitstream_roundtrip_size() {
        let (dfg, f, m) = mapped();
        let cs = ConfigStream::generate(&m, &dfg, &f);
        let bits = cs.pack();
        assert!(bits.len() >= 4 + f.num_pes() * m.ii as usize);
        assert_eq!(u16::from_le_bytes([bits[0], bits[1]]) as u32, m.ii);
    }

    #[test]
    fn render_shows_nops_and_ops() {
        let (dfg, f, m) = mapped();
        let cs = ConfigStream::generate(&m, &dfg, &f);
        let r = cs.render(&f);
        assert!(r.contains("nop"));
        assert!(r.contains("mul"));
    }
}
