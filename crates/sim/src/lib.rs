//! # cgra-sim
//!
//! Execution side of the framework: configuration-stream generation
//! (the survey's Fig. 2c "configuration register" view), a
//! cycle-accurate simulator that runs a mapped loop and checks it
//! against the IR reference interpreter, an energy model, and the
//! analytic architecture comparators behind the Fig. 1 reproduction.

pub mod archcmp;
pub mod config;
pub mod cycle;
pub mod energy;

pub use archcmp::{architecture_comparison, ArchPoint};
pub use config::{ConfigStream, Context};
pub use cycle::{simulate, simulate_verified, SimError, SimStats};
pub use energy::EnergyModel;
