//! Analytic architecture comparators — the Figure 1 reproduction.
//!
//! The survey's Figure 1 (after Liu et al.) places architecture
//! classes on flexibility / performance / energy-efficiency axes with
//! CGRAs in the sweet spot between FPGAs and ASICs. We regenerate the
//! *ordering* from first-principles models evaluated on the same
//! kernel suite:
//!
//! * **CPU** — narrow issue, every op pays fetch/decode/rename energy;
//!   maximal flexibility (any program, immediately).
//! * **DSP/VLIW** — wide static issue, lower control overhead, ILP
//!   capped by the kernel's dependence structure.
//! * **FPGA** — fully spatial, bit-level reconfigurable: highest
//!   per-op routing/config overhead of the spatial class, low clock,
//!   but throughput 1/cycle once configured; reconfiguration is slow
//!   (flexibility below CPU, above ASIC).
//! * **CGRA** — measured, not modelled: our simulator's II and the
//!   energy model on the mapped kernel.
//! * **ASIC** — the kernel hard-wired: critical-path throughput, ops
//!   only, no configuration; zero flexibility.

use crate::energy::EnergyModel;
use cgra_arch::Fabric;
use cgra_ir::graph::{critical_path, unit_latency};
use cgra_ir::Dfg;
use cgra_mapper_core::{Mapping, Metrics};
use serde::{Deserialize, Serialize};

/// One point of the Figure 1 plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchPoint {
    pub arch: String,
    /// Iterations (results) per reference cycle, averaged over kernels.
    pub performance: f64,
    /// Useful ops per unit energy (higher = more efficient).
    pub energy_efficiency: f64,
    /// 0..1: how broad a workload the architecture runs without
    /// re-implementation (qualitative scale from the surveys).
    pub flexibility: f64,
}

/// Model parameters for the non-CGRA classes.
struct ClassModel {
    name: &'static str,
    issue_width: f64,
    /// Energy multiplier over the raw op energy.
    energy_factor: f64,
    /// Clock relative to the CGRA.
    clock: f64,
    flexibility: f64,
    /// Fully spatial (throughput 1 per cycle regardless of ILP)?
    spatial: bool,
}

const CLASSES: &[ClassModel] = &[
    ClassModel {
        name: "CPU",
        issue_width: 2.0,
        energy_factor: 12.0, // fetch/decode/rename/bypass per op
        clock: 1.2,
        flexibility: 1.0,
        spatial: false,
    },
    ClassModel {
        name: "DSP",
        issue_width: 8.0,
        energy_factor: 4.0,
        clock: 1.0,
        flexibility: 0.85,
        spatial: false,
    },
    ClassModel {
        name: "FPGA",
        issue_width: f64::INFINITY,
        energy_factor: 2.5, // bit-level routing fabric overhead
        clock: 0.35,
        flexibility: 0.55,
        spatial: true,
    },
    ClassModel {
        name: "ASIC",
        issue_width: f64::INFINITY,
        energy_factor: 0.6,
        clock: 1.3,
        flexibility: 0.05,
        spatial: true,
    },
];

/// CGRA flexibility on the qualitative scale (word-level reconfigurable
/// in one cycle-to-milliseconds, programmable from C).
const CGRA_FLEXIBILITY: f64 = 0.7;

/// Evaluate all architecture classes on a set of mapped kernels.
///
/// `mapped` pairs each kernel with its CGRA mapping on `fabric`; the
/// analytic classes are evaluated on the same DFGs.
pub fn architecture_comparison(
    mapped: &[(Dfg, Mapping)],
    fabric: &Fabric,
    energy: &EnergyModel,
) -> Vec<ArchPoint> {
    assert!(!mapped.is_empty());
    let mut points = Vec::new();

    // Analytic classes.
    for class in CLASSES {
        let mut perf = 0.0;
        let mut eff = 0.0;
        for (dfg, _) in mapped {
            let ops = dfg.node_count() as f64;
            let cp = critical_path(dfg, &unit_latency) as f64;
            // Iterations per native cycle.
            let iters_per_cycle = if class.spatial {
                1.0 // pipelined spatial datapath
            } else {
                // Resource- or dependence-limited issue.
                1.0 / (ops / class.issue_width).max(cp / 3.0_f64.max(1.0))
            };
            perf += iters_per_cycle * class.clock;
            let e_per_op: f64 = dfg
                .nodes()
                .map(|(_, n)| energy.op_energy(n.op))
                .sum::<f64>()
                / ops;
            eff += 1.0 / (e_per_op * class.energy_factor);
        }
        points.push(ArchPoint {
            arch: class.name.to_string(),
            performance: perf / mapped.len() as f64,
            energy_efficiency: eff / mapped.len() as f64,
            flexibility: class.flexibility,
        });
    }

    // CGRA: measured from the mappings.
    let mut perf = 0.0;
    let mut eff = 0.0;
    for (dfg, mapping) in mapped {
        let metrics = Metrics::of(mapping, dfg, fabric);
        perf += metrics.throughput;
        eff += 1.0 / energy.energy_per_op(mapping, dfg, fabric, 1024);
    }
    points.push(ArchPoint {
        arch: "CGRA".to_string(),
        performance: perf / mapped.len() as f64,
        energy_efficiency: eff / mapped.len() as f64,
        flexibility: CGRA_FLEXIBILITY,
    });
    points
}

/// The Figure 1 shape assertions: CGRA sits between FPGA and ASIC on
/// flexibility, beats CPU and FPGA on energy efficiency, and beats the
/// CPU on performance. Returns a list of violated expectations (empty
/// = the figure reproduces).
pub fn figure1_shape_violations(points: &[ArchPoint]) -> Vec<String> {
    let get = |name: &str| points.iter().find(|p| p.arch == name);
    let mut violations = Vec::new();
    let (Some(cpu), Some(fpga), Some(asic), Some(cgra)) =
        (get("CPU"), get("FPGA"), get("ASIC"), get("CGRA"))
    else {
        return vec!["missing architecture points".into()];
    };
    let mut check = |cond: bool, msg: &str| {
        if !cond {
            violations.push(msg.to_string());
        }
    };
    check(
        cgra.flexibility > asic.flexibility && cgra.flexibility < cpu.flexibility,
        "CGRA flexibility must sit between ASIC and CPU",
    );
    check(
        cgra.energy_efficiency > cpu.energy_efficiency,
        "CGRA must be more energy-efficient than the CPU",
    );
    check(
        cgra.energy_efficiency < asic.energy_efficiency,
        "ASIC must remain the energy-efficiency ceiling",
    );
    check(
        cgra.performance > cpu.performance,
        "CGRA must outperform the CPU on loop kernels",
    );
    check(
        fpga.flexibility > asic.flexibility,
        "FPGA must be more flexible than ASIC",
    );
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;
    use cgra_mapper_core::prelude::*;

    fn mapped_suite() -> (Fabric, Vec<(Dfg, Mapping)>) {
        let f = Fabric::homogeneous(4, 4, Topology::Mesh);
        let mapper = ModuloList::default();
        let mapped: Vec<(Dfg, Mapping)> = kernels::suite()
            .into_iter()
            .filter_map(|dfg| {
                let m = mapper.map(&dfg, &f, &MapConfig::fast()).ok()?;
                Some((dfg, m))
            })
            .collect();
        (f, mapped)
    }

    #[test]
    fn comparison_produces_all_five_classes() {
        let (f, mapped) = mapped_suite();
        assert!(mapped.len() >= 8);
        let points = architecture_comparison(&mapped, &f, &EnergyModel::default());
        assert_eq!(points.len(), 5);
        let names: Vec<&str> = points.iter().map(|p| p.arch.as_str()).collect();
        for want in ["CPU", "DSP", "FPGA", "ASIC", "CGRA"] {
            assert!(names.contains(&want), "{want} missing");
        }
    }

    #[test]
    fn figure1_ordering_holds() {
        let (f, mapped) = mapped_suite();
        let points = architecture_comparison(&mapped, &f, &EnergyModel::default());
        let violations = figure1_shape_violations(&points);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
