//! Cycle-accurate execution of a mapped loop.
//!
//! The simulator executes the software-pipelined schedule exactly as
//! the fabric would: iteration `i` of operation `n` issues at absolute
//! cycle `time(n) + i·II`; operand values are read through the mapped
//! routes (iteration `i − dist` of the producer); stream I/O and data
//! memory behave as in the reference interpreter. The run is verified
//! by comparing every output stream against
//! [`cgra_ir::Interpreter`] — the end-to-end check that a mapping is
//! not merely structurally valid but *functionally correct*.
//!
//! Within one cycle, memory operations execute in deterministic
//! (cycle, PE-index) order. Kernels whose cross-iteration memory
//! aliasing depends on intra-iteration program order beyond their
//! dependence edges are rejected by comparison against the interpreter
//! rather than silently mis-simulated.

use cgra_arch::Fabric;
use cgra_ir::interp::Tape;
use cgra_ir::{Dfg, NodeId, OpKind, Value};
use cgra_mapper_core::Mapping;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    pub iterations: usize,
    /// Total cycles: pipeline fill + (iters − 1)·II + drain.
    pub cycles: u64,
    /// Iterations per cycle in steady state.
    pub throughput: f64,
    /// Issue slots used / issue slots available over the whole run.
    pub utilisation: f64,
    /// Output streams, `outputs[stream][iteration]`.
    pub outputs: Vec<Vec<Value>>,
    /// Final memory image.
    pub memory: Vec<Value>,
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The mapping failed validation first.
    Invalid(String),
    /// An input stream ran dry.
    MissingInput { stream: u32, iteration: usize },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Invalid(e) => write!(f, "invalid mapping: {e}"),
            SimError::MissingInput { stream, iteration } => {
                write!(f, "input {stream} dry at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Execute `iters` iterations of a mapped loop.
pub fn simulate(
    mapping: &Mapping,
    dfg: &Dfg,
    fabric: &Fabric,
    iters: usize,
    tape: &Tape,
) -> Result<SimStats, SimError> {
    cgra_mapper_core::validate(mapping, dfg, fabric)
        .map_err(|e| SimError::Invalid(e.to_string()))?;

    // Event list: (cycle, pe-index for determinism, node, iteration).
    let mut events: Vec<(u64, u16, NodeId, usize)> = Vec::with_capacity(dfg.node_count() * iters);
    for (id, _) in dfg.nodes() {
        let p = mapping.placement(id);
        for i in 0..iters {
            events.push((p.time as u64 + i as u64 * mapping.ii as u64, p.pe.0, id, i));
        }
    }
    events.sort_unstable();

    let out_streams = dfg
        .node_ids()
        .filter_map(|id| match dfg.op(id) {
            OpKind::Output(s) => Some(s as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut outputs: Vec<Vec<Value>> = vec![vec![0; iters]; out_streams];
    let mut memory = tape.memory.clone();
    // Computed values: (node, iteration) → value. Kept for the whole
    // run: events are ordered by cycle, not iteration, so operations
    // deep in the pipeline still read old iterations late.
    let mut values: HashMap<(u32, usize), Value> = HashMap::new();

    let mut last_cycle = 0u64;
    for &(cycle, _, id, iter) in &events {
        last_cycle = last_cycle.max(cycle + fabric.latency_of(dfg.op(id)) as u64);
        let op = dfg.op(id);
        let arity = op.ports().count();
        let mut operands = [0 as Value; 3];
        for p in 0..arity as u8 {
            let (_, e) = dfg.operand(id, p).expect("validated");
            operands[p as usize] = if (iter as u64) < e.dist as u64 {
                e.init[iter]
            } else {
                *values
                    .get(&(e.src.0, iter - e.dist as usize))
                    .expect("producer executed earlier (validated schedule)")
            };
        }
        let operands = &operands[..arity];
        let v = match op {
            OpKind::Input(s) => *tape
                .inputs
                .get(s as usize)
                .and_then(|st| st.get(iter))
                .ok_or(SimError::MissingInput {
                    stream: s,
                    iteration: iter,
                })?,
            OpKind::Output(s) => {
                outputs[s as usize][iter] = operands[0];
                operands[0]
            }
            OpKind::Load => {
                let len = memory.len().max(1) as Value;
                let addr = operands[0].rem_euclid(len) as usize;
                memory.get(addr).copied().unwrap_or(0)
            }
            OpKind::Store => {
                let len = memory.len().max(1) as Value;
                let addr = operands[0].rem_euclid(len) as usize;
                if addr < memory.len() {
                    memory[addr] = operands[1];
                }
                operands[1]
            }
            other => other.eval(operands),
        };
        values.insert((id.0, iter), v);
    }

    let issue_slots = last_cycle.max(1) * fabric.num_pes() as u64;
    Ok(SimStats {
        iterations: iters,
        cycles: last_cycle,
        throughput: if last_cycle == 0 {
            0.0
        } else {
            iters as f64 / last_cycle as f64
        },
        utilisation: (dfg.node_count() * iters) as f64 / issue_slots as f64,
        outputs,
        memory,
    })
}

/// Simulate and verify against the reference interpreter; returns the
/// stats if and only if every output stream and the final memory match.
pub fn simulate_verified(
    mapping: &Mapping,
    dfg: &Dfg,
    fabric: &Fabric,
    iters: usize,
    tape: &Tape,
) -> Result<SimStats, String> {
    let stats = simulate(mapping, dfg, fabric, iters, tape).map_err(|e| e.to_string())?;
    let golden = cgra_ir::Interpreter::run(dfg, iters, tape).map_err(|e| e.to_string())?;
    if stats.outputs != golden.outputs {
        return Err(format!(
            "output mismatch: mapped {:?} vs golden {:?}",
            stats.outputs, golden.outputs
        ));
    }
    if stats.memory != golden.memory {
        return Err("memory image mismatch".into());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra_arch::Topology;
    use cgra_ir::kernels;
    use cgra_mapper_core::prelude::*;

    fn mesh() -> Fabric {
        Fabric::homogeneous(4, 4, Topology::Mesh)
    }

    #[test]
    fn simulated_dot_product_matches_interpreter() {
        let dfg = kernels::dot_product();
        let f = mesh();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let tape = Tape::generate(2, 8, |s, i| (s as i64 + 1) * (i as i64 + 1));
        let stats = simulate_verified(&m, &dfg, &f, 8, &tape).unwrap();
        assert_eq!(stats.iterations, 8);
        assert!(stats.cycles >= 8);
        assert!(stats.throughput > 0.0);
    }

    #[test]
    fn whole_suite_simulates_correctly_under_modulo_list() {
        let f = mesh();
        for dfg in kernels::suite() {
            let m = ModuloList::default()
                .map(&dfg, &f, &MapConfig::fast())
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
            let streams = dfg
                .nodes()
                .filter_map(|(_, n)| match n.op {
                    cgra_ir::OpKind::Input(s) => Some(s as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let tape = Tape::generate(streams, 6, |s, i| ((s + 2) * (i + 1)) as i64 % 53)
                .with_memory(vec![3; 128]);
            simulate_verified(&m, &dfg, &f, 6, &tape)
                .unwrap_or_else(|e| panic!("{}: {e}", dfg.name));
        }
    }

    #[test]
    fn pipelining_shows_in_cycle_count() {
        // At II=1, N iterations take ~N + depth cycles, far below N x len.
        let dfg = kernels::accumulate();
        let f = mesh();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let iters = 64;
        let tape = Tape::generate(1, iters, |_, i| i as i64);
        let stats = simulate(&m, &dfg, &f, iters, &tape).unwrap();
        let serial_bound = iters as u64 * m.schedule_len(&dfg, &f) as u64;
        assert!(
            stats.cycles < serial_bound / 2,
            "no pipelining visible: {} vs serial {}",
            stats.cycles,
            serial_bound
        );
    }

    #[test]
    fn dry_input_reported() {
        let dfg = kernels::dot_product();
        let f = mesh();
        let m = ModuloList::default()
            .map(&dfg, &f, &MapConfig::fast())
            .unwrap();
        let tape = Tape::generate(2, 3, |_, _| 1);
        let err = simulate(&m, &dfg, &f, 5, &tape).unwrap_err();
        assert!(matches!(err, SimError::MissingInput { .. }));
    }

    #[test]
    fn invalid_mapping_rejected() {
        let dfg = kernels::dot_product();
        let f = mesh();
        let m = Mapping::empty(&dfg, 1);
        let err = simulate(&m, &dfg, &f, 2, &Tape::generate(2, 2, |_, _| 1)).unwrap_err();
        assert!(matches!(err, SimError::Invalid(_)));
    }
}
