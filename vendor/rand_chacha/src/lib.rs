//! Offline stand-in for `rand_chacha`. The workspace only needs a
//! deterministic seedable generator under the `ChaCha8Rng` name; it
//! does not rely on the actual ChaCha stream, so this delegates to the
//! xoshiro core of the vendored `rand` shim (domain-separated so the
//! two named generators do not emit identical streams).

use rand::{RngCore, SeedableRng, Xoshiro256};

macro_rules! chacha_like {
    ($name:ident, $salt:expr) => {
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::from_seed_u64(seed ^ $salt))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }
    };
}

chacha_like!(ChaCha8Rng, 0x8A5C_D789_635D_2DFF);
chacha_like!(ChaCha12Rng, 0x1234_5678_9ABC_DEF0);
chacha_like!(ChaCha20Rng, 0x0F1E_2D3C_4B5A_6978);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seedable_and_samplable() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a: f64 = rng.random();
        assert!((0.0..1.0).contains(&a));
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let _: f64 = rng2.random();
        assert_eq!(rng.random_range(0..10u32), rng2.random_range(0..10u32));
    }
}
