//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random`, `Rng::random_range` —
//! over a xoshiro256++ generator seeded through SplitMix64. Not a
//! reproduction of the real crate's value streams; the workspace only
//! relies on determinism-per-seed, not on specific sequences.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full type domain (the
/// `StandardUniform` distribution of real rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types uniformly samplable from a half-open span (the
/// `SampleUniform` of real rand).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_span<R: RngCore + ?Sized>(lo: Self, hi_excl: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(lo: Self, hi_excl: Self, rng: &mut R) -> Self {
                let span = (hi_excl as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (the `SampleRange` of real rand).
/// The impls are generic over `T` so `rng.random_range(0..n)` unifies
/// the literal's type with the surrounding usage, as the real crate
/// does.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_span(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + SpanStep> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        if hi < T::max_value() {
            T::sample_span(lo, hi.step_up(), rng)
        } else if lo > T::min_value() {
            // Shift down one to keep the span representable.
            T::sample_span(lo.step_down(), hi, rng).step_up()
        } else {
            // Full domain.
            T::sample_span(T::min_value(), T::max_value(), rng)
        }
    }
}

/// Successor/predecessor and bounds, for inclusive-range sampling.
pub trait SpanStep: Copy {
    fn step_up(self) -> Self;
    fn step_down(self) -> Self;
    fn max_value() -> Self;
    fn min_value() -> Self;
}

macro_rules! impl_span_step {
    ($($t:ty),*) => {$(
        impl SpanStep for $t {
            fn step_up(self) -> Self { self + 1 }
            fn step_down(self) -> Self { self - 1 }
            fn max_value() -> Self { <$t>::MAX }
            fn min_value() -> Self { <$t>::MIN }
        }
    )*};
}

impl_span_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling surface; blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// xoshiro256++ core shared by `StdRng` and the `rand_chacha` shim.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.random_range(3u32..9);
            assert!((3..9).contains(&u));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
