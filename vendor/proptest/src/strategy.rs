//! Sampling strategies for the proptest shim.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `any::<T>()`: uniform over the whole type domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A fixed value (`Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::Strategy;
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem_strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32 })]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -50i64..50, z in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-50..50).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn tuples_and_maps(v in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a as u32, b))) {
            prop_assert!(v.0 < 4);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec((0usize..5, any::<bool>()), 1..=3)) {
            prop_assert!((1..=3).contains(&v.len()));
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }
    }
}
