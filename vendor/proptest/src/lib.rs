//! Offline stand-in for `proptest`.
//!
//! Provides the strategy surface the workspace's property tests use —
//! integer-range strategies, `any::<T>()`, tuples, `prop_map`,
//! `prop::collection::vec` — plus the `proptest!`, `prop_assert!`, and
//! `prop_assert_eq!` macros. Sampling is purely random (no shrinking);
//! seeds derive deterministically from the test name so failures
//! reproduce, and `PROPTEST_SEED` perturbs them when exploration is
//! wanted.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

pub mod strategy;
pub use strategy::{any, Strategy};

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// `prop::collection::vec` etc. live under this module path in the
/// real crate's prelude.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::*;
    }
}

pub mod collection {
    pub use crate::strategy::collection::*;
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test RNG (SplitMix64 over a hash of the test
/// name, optionally perturbed by `PROPTEST_SEED`).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: h.finish() ^ env ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Run `cases` sampled executions of a test body. Used by `proptest!`.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::for_test(name);
    for _ in 0..cases {
        body(&mut rng);
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            $crate::run_cases(stringify!($name), cfg.cases, |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
            });
        }
    )*};
}
