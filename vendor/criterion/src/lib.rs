//! Offline stand-in for `criterion`.
//!
//! Implements the `benchmark_group` / `bench_function` /
//! `bench_with_input` / `Bencher::iter` surface with simple wall-clock
//! timing (median of per-sample means). Because the workspace's bench
//! targets are `harness = false`, `cargo test` executes them directly;
//! to keep the test suite fast each benchmark is capped at
//! [`QUICK_CAP`] of measurement unless `CRITERION_FULL=1` is set, in
//! which case the configured `measurement_time` is honoured.

use std::time::{Duration, Instant};

/// Per-benchmark measurement cap in quick mode.
const QUICK_CAP: Duration = Duration::from_millis(120);

fn full_mode() -> bool {
    std::env::var("CRITERION_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Top-level handle handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// Identifier combining a function name and an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl ToString, parameter: impl ToString) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.to_string(), parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl ToString) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl ToString,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let budget = if full_mode() {
            self.measurement_time
        } else {
            self.measurement_time.min(QUICK_CAP)
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            budget,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or(0);
        println!("{}/{}: median {} per iter", self.name, id, fmt_ns(median));
    }

    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: Vec<u128>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: time one call to pick an iteration
        // count that keeps each sample around a millisecond.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let start = Instant::now();
        for _ in 0..self.sample_size {
            if start.elapsed() > self.budget {
                break;
            }
            let s = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(s.elapsed().as_nanos() / iters_per_sample as u128);
        }
        if self.samples.is_empty() {
            self.samples.push(once.as_nanos());
        }
    }
}

/// Re-export mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false targets with harness
            // flags; ignore any arguments.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5).measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
        assert!(calls > 0);
    }
}
