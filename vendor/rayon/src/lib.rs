//! Offline stand-in for `rayon`.
//!
//! Implements the small parallel-iterator surface the workspace uses
//! (`par_iter`, `into_par_iter`, `map`, `map_init`, `filter_map`,
//! `collect`) with real parallelism via `std::thread::scope`: the item
//! set is materialised up front, split into per-thread chunks, and
//! results are re-assembled in input order. Unlike real rayon there is
//! no work stealing, which is fine for the coarse-grained jobs
//! (whole-kernel mapping runs, SA chains, GA fitness sweeps) this
//! workspace fans out.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

fn thread_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.max(1))
}

/// Order-preserving parallel map with a per-thread init value — the
/// execution engine under every combinator here.
fn run_map_init<T, U, S, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    // Split into contiguous chunks, one per thread, preserving order.
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let init = &init;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    let mut state = init();
                    c.into_iter().map(|x| f(&mut state, x)).collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, INIT, F>
    where
        U: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> U + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }

    pub fn filter_map<U, F>(self, f: F) -> ParFilterMap<T, F>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map_init(self.items, || (), |_, x| f(x));
    }
}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        run_map_init(self.items, || (), |_, x| (self.f)(x)).into()
    }
}

pub struct ParMapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T, S, U, INIT, F> ParMapInit<T, INIT, F>
where
    T: Send,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        run_map_init(self.items, self.init, self.f).into()
    }
}

pub struct ParFilterMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> Option<U> + Sync> ParFilterMap<T, F> {
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        run_map_init(self.items, || (), |_, x| (self.f)(x))
            .into_iter()
            .flatten()
            .collect::<Vec<U>>()
            .into()
    }
}

/// Owned conversion (`(0..n).into_par_iter()`, `vec.into_par_iter()`).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing conversion (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let v: Vec<usize> = (0..100usize)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(v, (0..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let v: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(v, vec![2, 3, 4, 5]);
    }

    #[test]
    fn map_init_reuses_state() {
        let v: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, x| {
                scratch.push(x);
                scratch.len()
            })
            .collect();
        // Each worker's scratch grows monotonically; per-item results
        // are at least 1 and never exceed the chunk size.
        assert!(v.iter().all(|&n| (1..=64).contains(&n)));
    }
}
