//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build
//! environment, so the workspace vendors a minimal serde data model
//! (see `vendor/serde`): `Serialize` is a single `to_value(&self) ->
//! Value` method. This derive hand-parses the item definition from the
//! raw token stream (no `syn`/`quote`) and emits that impl for the
//! struct/enum shapes the workspace actually uses: non-generic named
//! structs, tuple structs, and enums with unit/tuple/struct variants.
//!
//! `#[derive(Deserialize)]` expands to nothing: no code in the
//! workspace deserializes into a typed value (only into
//! `serde_json::Value`, which does not go through the derive).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.kind {
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n}}\n}}",
                name = item.name,
                pairs = pairs.join(", ")
            )
        }
        ItemKind::TupleStruct(arity) => {
            let body = if arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}",
                name = item.name
            )
        }
        ItemKind::UnitStruct => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}",
            name = item.name
        ),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let name = &item.name;
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![\
                             (String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(k) => {
                            let binds: Vec<String> =
                                (0..*k).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*k)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![\
                                 (String::from(\"{vn}\"), ::serde::Value::Array(vec![{elems}]))]),",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (String::from(\"{vn}\"), ::serde::Value::Object(vec![{pairs}]))]),",
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n}}\n}}",
                name = item.name,
                arms = arms.join("\n")
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("mini serde_derive does not support generic types (on `{name}`)");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_top_level_elems(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(enum_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive Serialize for `{other}` item"),
    };
    Item { name, kind }
}

/// Field names of a named-field body, skipping attributes, visibility,
/// and type tokens (angle-bracket aware so `Map<K, V>` commas don't
/// split fields).
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, got {other:?}"),
            None => break,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Consume the type up to the next top-level comma.
        let mut angle: i32 = 0;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of top-level comma-separated elements (tuple-struct fields or
/// tuple-variant payloads).
fn count_top_level_elems(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle: i32 = 0;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn enum_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, got {other:?}"),
            None => break,
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = count_top_level_elems(g.stream());
                toks.next();
                VariantKind::Tuple(k)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip any explicit discriminant, then the trailing comma.
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}
