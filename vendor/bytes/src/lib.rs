//! Offline stand-in for `bytes`: just enough of `BytesMut`/`Bytes`/
//! `BufMut` for the configuration bitstream packer.

use std::ops::Deref;

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little/big-endian append operations.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, v: &[u8]);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_and_freeze() {
        let mut b = BytesMut::new();
        b.put_u16_le(0x1234);
        b.put_u8(0xFF);
        b.put_i64_le(-2);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 11);
        assert_eq!(frozen[0], 0x34);
        assert_eq!(frozen[1], 0x12);
        assert_eq!(frozen[2], 0xFF);
        assert_eq!(u16::from_le_bytes([frozen[0], frozen[1]]), 0x1234);
    }
}
