//! The JSON value tree shared by the `serde` and `serde_json` shims.

use std::fmt;
use std::ops::Index;

/// A JSON value. Object preserves insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null"); // JSON has no inf/nan
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with `width`-space indentation.
    pub fn render_pretty(&self, width: usize) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(width), 0);
        s
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
