//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal serialization surface it actually uses: a JSON
//! value tree ([`Value`]), a [`Serialize`] trait producing it, and
//! derive macros re-exported from the sibling `serde_derive` shim.
//! `Deserialize` exists only so `use serde::{Deserialize, Serialize}`
//! and `#[derive(Deserialize)]` keep compiling; nothing in the
//! workspace deserializes into typed values.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;
pub use value::Value;

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Marker trait; the paired derive expands to nothing.
pub trait Deserialize {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
