//! Offline stand-in for `serde_json`: render [`serde::Serialize`]
//! types to JSON text and parse JSON text back into [`Value`] trees.

pub use serde::Value;
use std::fmt;

#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.to_value().render())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    Ok(v.to_value().render_pretty(2))
}

pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

pub fn from_slice(bytes: &[u8]) -> Result<Value, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// Build a [`Value`] literal. Supports the subset the workspace uses:
/// objects with string-literal keys, arrays, and arbitrary
/// `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| Error(e.to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = json!({
            "name": "dot",
            "n": 3u32,
            "pi": 3.5f64,
            "ok": true,
            "list": [1, 2, 3],
            "none": Option::<u32>::None
        });
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back["name"], "dot");
        assert_eq!(back["n"].as_u64(), Some(3));
        assert!(back["pi"].as_f64().unwrap() > 3.0);
        assert_eq!(back["list"][1].as_u64(), Some(2));
        assert!(back["none"].is_null());
        assert_eq!(back["missing"], Value::Null);
    }

    #[test]
    fn escapes() {
        let v = Value::Str("a\"b\\c\nd".into());
        let text = v.render();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
