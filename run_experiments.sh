#!/usr/bin/env bash
# Regenerate every artifact of the survey reproduction into results/.
set -uo pipefail
cd "$(dirname "$0")"
mkdir -p results
for exp in fig2 fig4 fig3 fig1 table1 ablations scalability; do
  echo "=== $exp ==="
  cargo run --release -p cgra-bench --bin "$exp" 2>&1 | tee "results/$exp.txt"
done
